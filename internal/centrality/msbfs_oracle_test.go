package centrality

// Oracles and property tests for the MS-BFS kernels (Closeness,
// NodeBetweenness and the edge-dependency path behind
// EdgeBetweenness/Betweenness):
//
//   - closenessPerSource preserves the replaced one-BFS-per-node closeness
//     loop; the MS-BFS pivot accumulation reproduces it bit for bit in
//     exact mode because both compute the same integers.
//   - canonicalBetweenness is the serial replay of the batched Brandes
//     summation order (ascending nodes within a level, ascending CSR
//     neighbors, fixed shard discipline) for BOTH accumulators: node
//     dependencies node-outer/bit-inner, and edge dependencies one term
//     per (source, edge) — sigma(pred)·coeff(succ), succ the endpoint one
//     level deeper — folded per edge in shard-source order. The production
//     path must match it bit for bit at every worker count and batch
//     width.
//   - the seed map oracle (oracle_test.go) sums per-source dependencies in
//     queue order instead, so the MS-BFS scores match it only to float
//     tolerance — that cross-check bounds the reordering drift.

import (
	"math"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/obs"
	"edgeshed/internal/par"
)

// closenessPerSource is the replaced production kernel: one BFS per node,
// touched-entry reset, the Wasserman–Faust score written per source. It is
// the PerSource half of the Closeness benchmark pair and the bit-exact
// oracle for the MS-BFS path's exact mode.
func closenessPerSource(g *graph.Graph) []float64 {
	n := g.NumNodes()
	scores := make([]float64, n)
	if n <= 1 {
		return scores
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]graph.NodeID, 0, n)
	for su := 0; su < n; su++ {
		s := graph.NodeID(su)
		queue = queue[:0]
		dist[s] = 0
		queue = append(queue, s)
		var sum int64
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			sum += int64(dist[v])
			for _, x := range g.Neighbors(v) {
				if dist[x] < 0 {
					dist[x] = dist[v] + 1
					queue = append(queue, x)
				}
			}
		}
		r := len(queue)
		if r > 1 && sum > 0 {
			rm1 := float64(r - 1)
			scores[s] = (rm1 / float64(n-1)) * (rm1 / float64(sum))
		}
		for _, v := range queue {
			dist[v] = -1
		}
	}
	return scores
}

// canonicalBrandesSource runs one canonical-order Brandes pass from src:
// distances by plain BFS, levels enumerated ascending by node id, sigma
// pulled and delta pushed over ascending CSR neighbors — exactly the
// per-(node, bit) summation order of batchedBrandes.run. When edgeAcc is
// non-nil it also folds this source's edge dependencies: every undirected
// edge on the BFS DAG contributes exactly one term,
// sigma(pred)·((1+delta(succ))/sigma(succ)) with succ the endpoint one
// level deeper — the same operands and operations the production fold
// reads from its transformed coeff rows, so per (source, edge) the term is
// bit-equal, and adding terms source-by-source reproduces the batched
// fold's shard-source order at any batch width.
func canonicalBrandesSource(c *graph.CSR, src graph.NodeID, dist []int32, sigma, delta []float64, acc, edgeAcc []float64) {
	n := c.NumNodes()
	for i := range dist {
		dist[i] = -1
		sigma[i] = 0
		delta[i] = 0
	}
	dist[src] = 0
	queue := make([]graph.NodeID, 0, n)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range c.Targets[c.Offsets[v]:c.Offsets[v+1]] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	maxd := int32(0)
	for _, v := range queue {
		if dist[v] > maxd {
			maxd = dist[v]
		}
	}
	levels := make([][]graph.NodeID, maxd+1)
	for u := graph.NodeID(0); int(u) < n; u++ {
		if dist[u] >= 0 {
			levels[dist[u]] = append(levels[dist[u]], u)
		}
	}
	sigma[src] = 1
	for d := int32(1); d <= maxd; d++ {
		for _, u := range levels[d] {
			for _, nb := range c.Targets[c.Offsets[u]:c.Offsets[u+1]] {
				if dist[nb] == d-1 {
					sigma[u] += sigma[nb]
				}
			}
		}
	}
	for d := maxd; d >= 1; d-- {
		for _, u := range levels[d] {
			coeff := (1 + delta[u]) / sigma[u]
			for _, nb := range c.Targets[c.Offsets[u]:c.Offsets[u+1]] {
				if dist[nb] == d-1 {
					delta[nb] += sigma[nb] * coeff
				}
			}
		}
	}
	if acc != nil {
		for u := 0; u < n; u++ {
			if dist[u] > 0 {
				acc[u] += delta[u]
			}
		}
	}
	if edgeAcc != nil {
		for e := range c.EdgeU {
			u, v := c.EdgeU[e], c.EdgeV[e]
			du, dv := dist[u], dist[v]
			if du < 0 || dv < 0 {
				continue
			}
			switch {
			case dv == du+1:
				edgeAcc[e] += sigma[u] * ((1 + delta[v]) / sigma[v])
			case du == dv+1:
				edgeAcc[e] += sigma[v] * ((1 + delta[u]) / sigma[u])
			}
		}
	}
}

// canonicalBetweenness mirrors msbfsBetweenness serially: same source
// selection, same fixed shard assignment and in-order per-shard
// accumulation, same shard-order merge and scaling, over the canonical
// per-source pass above. Its node and edge results must equal the
// production path bit for bit at any Workers count and any Batch width.
func canonicalBetweenness(g *graph.Graph, opt Options) ([]float64, []float64) {
	n := g.NumNodes()
	nodes := make([]float64, n)
	edges := make([]float64, g.NumEdges())
	if n == 0 {
		return nodes, edges
	}
	srcs, scale := opt.sources(n)
	if len(srcs) == 0 {
		return nodes, edges
	}
	c := g.CSR()
	orderSourcesByLocality(c, srcs)
	shards := par.Shards
	if shards > len(srcs) {
		shards = len(srcs)
	}
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	type partial struct {
		nodes, edges []float64
	}
	parts := make([]partial, shards)
	for k := 0; k < shards; k++ {
		acc := make([]float64, n)
		edgeAcc := make([]float64, g.NumEdges())
		lo, hi := par.Block(len(srcs), shards, k)
		for _, s := range srcs[lo:hi] {
			canonicalBrandesSource(c, s, dist, sigma, delta, acc, edgeAcc)
		}
		parts[k] = partial{nodes: acc, edges: edgeAcc}
	}
	for _, p := range parts {
		for i, v := range p.nodes {
			nodes[i] += v
		}
		for i, v := range p.edges {
			edges[i] += v
		}
	}
	for i := range nodes {
		nodes[i] *= scale / 2
	}
	for i := range edges {
		edges[i] *= scale / 2
	}
	return nodes, edges
}

func propertyGraphs() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"BA", gen.BarabasiAlbert(250, 3, 7)},
		{"ER", gen.ErdosRenyi(250, 700, 11)},
		{"WS", gen.WattsStrogatz(250, 6, 0.1, 13)},
		{"Disconnected", graph.MustFromEdges(80, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 10, V: 11},
			{U: 20, V: 21}, {U: 21, V: 22}, {U: 22, V: 23},
		})},
	}
}

var propertyConfigs = struct {
	workers []int
	batches []int
}{[]int{1, 2, 4, 7}, []int{1, 8, 64}}

// TestClosenessBitIdenticalToPerSourceOracle is the migration property
// test: exact-mode MS-BFS closeness must reproduce the replaced per-source
// kernel bit for bit across graphs, worker counts and batch widths.
func TestClosenessBitIdenticalToPerSourceOracle(t *testing.T) {
	for _, tg := range propertyGraphs() {
		want := closenessPerSource(tg.g)
		for _, workers := range propertyConfigs.workers {
			for _, batch := range propertyConfigs.batches {
				got := Closeness(tg.g, Options{Workers: workers, Batch: batch})
				for u := range want {
					if got[u] != want[u] {
						t.Fatalf("%s workers=%d batch=%d node %d: %v != oracle %v",
							tg.name, workers, batch, u, got[u], want[u])
					}
				}
			}
		}
	}
}

// TestClosenessSampledDeterministicAndSane: the sampled estimator is
// bit-identical across worker counts and batch widths, oversampling
// degenerates to the exact bits, and on a connected graph the estimate
// lands near the exact score.
func TestClosenessSampledDeterministicAndSane(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 5)
	opt := Options{Samples: 128, Seed: 9, Workers: 1, Batch: 64}
	want := Closeness(g, opt)
	for _, workers := range propertyConfigs.workers {
		for _, batch := range propertyConfigs.batches {
			o := opt
			o.Workers = workers
			o.Batch = batch
			got := Closeness(g, o)
			for u := range want {
				if got[u] != want[u] {
					t.Fatalf("workers=%d batch=%d node %d: %v != %v", workers, batch, u, got[u], want[u])
				}
			}
		}
	}
	exact := Closeness(g, Options{})
	over := Closeness(g, Options{Samples: 400, Seed: 3})
	for u := range exact {
		if over[u] != exact[u] {
			t.Fatalf("node %d: Samples=|V| %v != exact %v", u, over[u], exact[u])
		}
	}
	for u := range exact {
		if exact[u] == 0 {
			continue
		}
		if rel := math.Abs(want[u]-exact[u]) / exact[u]; rel > 0.5 {
			t.Fatalf("node %d: sampled %v vs exact %v (rel %.2f)", u, want[u], exact[u], rel)
		}
	}
}

// TestNodeBetweennessBitIdenticalToCanonicalOracle pins the batched Brandes
// path to its canonical serial oracle bit for bit, exact and sampled,
// across graphs, worker counts and batch widths — the any-worker-count,
// any-batch-width determinism guarantee.
func TestNodeBetweennessBitIdenticalToCanonicalOracle(t *testing.T) {
	modes := []struct {
		name string
		opt  Options
	}{
		{"exact", Options{}},
		{"sampled", Options{Samples: 60, Seed: 3}},
	}
	for _, tg := range propertyGraphs() {
		for _, mode := range modes {
			want, _ := canonicalBetweenness(tg.g, mode.opt)
			for _, workers := range propertyConfigs.workers {
				for _, batch := range propertyConfigs.batches {
					opt := mode.opt
					opt.Workers = workers
					opt.Batch = batch
					got := NodeBetweenness(tg.g, opt)
					for u := range want {
						if got[u] != want[u] {
							t.Fatalf("%s/%s workers=%d batch=%d node %d: %v != oracle %v",
								tg.name, mode.name, workers, batch, u, got[u], want[u])
						}
					}
				}
			}
		}
	}
}

// TestEdgeBetweennessBitIdenticalToCanonicalOracle is the tentpole property
// of the edge-dependency path: EdgeBetweennessScores and both halves of the
// combined Betweenness must reproduce the canonical serial oracle bit for
// bit, exact and sampled, across graphs, worker counts and batch widths —
// proof that the slot-mask fold's summation tree is a function of (graph,
// Options) alone.
func TestEdgeBetweennessBitIdenticalToCanonicalOracle(t *testing.T) {
	modes := []struct {
		name string
		opt  Options
	}{
		{"exact", Options{}},
		{"sampled", Options{Samples: 60, Seed: 3}},
	}
	for _, tg := range propertyGraphs() {
		for _, mode := range modes {
			wantN, wantE := canonicalBetweenness(tg.g, mode.opt)
			for _, workers := range propertyConfigs.workers {
				for _, batch := range propertyConfigs.batches {
					opt := mode.opt
					opt.Workers = workers
					opt.Batch = batch
					gotE := EdgeBetweennessScores(tg.g, opt)
					for i := range wantE {
						if gotE[i] != wantE[i] {
							t.Fatalf("%s/%s workers=%d batch=%d edge %d %v: %v != oracle %v",
								tg.name, mode.name, workers, batch, i, tg.g.Edges()[i], gotE[i], wantE[i])
						}
					}
					bothN, bothE := Betweenness(tg.g, opt)
					for u := range wantN {
						if bothN[u] != wantN[u] {
							t.Fatalf("%s/%s workers=%d batch=%d Betweenness node %d: %v != oracle %v",
								tg.name, mode.name, workers, batch, u, bothN[u], wantN[u])
						}
					}
					for i := range wantE {
						if bothE[i] != wantE[i] {
							t.Fatalf("%s/%s workers=%d batch=%d Betweenness edge %d: %v != oracle %v",
								tg.name, mode.name, workers, batch, i, bothE[i], wantE[i])
						}
					}
				}
			}
		}
	}
}

// TestBetweennessNearSeedOracle bounds the canonical reordering against
// the seed map-indexed oracle for both accumulators: same quantities,
// different summation trees, so node and edge scores agree to tight float
// tolerance rather than bit-exactly.
func TestBetweennessNearSeedOracle(t *testing.T) {
	for _, tg := range propertyGraphs() {
		for _, opt := range []Options{{}, {Samples: 60, Seed: 3}} {
			gotN, gotE := Betweenness(tg.g, opt)
			wantN, wantE := oracleBoth(tg.g, opt, true, true)
			for u := range wantN {
				diff := math.Abs(gotN[u] - wantN[u])
				if diff > 1e-9*math.Max(1, math.Abs(wantN[u])) {
					t.Fatalf("%s samples=%d node %d: msbfs %v vs seed oracle %v",
						tg.name, opt.Samples, u, gotN[u], wantN[u])
				}
			}
			for i := range wantE {
				diff := math.Abs(gotE[i] - wantE[i])
				if diff > 1e-9*math.Max(1, math.Abs(wantE[i])) {
					t.Fatalf("%s samples=%d edge %d %v: msbfs %v vs seed oracle %v",
						tg.name, opt.Samples, i, tg.g.Edges()[i], gotE[i], wantE[i])
				}
			}
		}
	}
}

// TestBatchClampedToEngineWidth pins the documented Batch handling: zero,
// negative and over-wide values all select the engine's full 64-bit word,
// bit-identically — the same absorb-out-of-range convention Samples and
// Workers follow.
func TestBatchClampedToEngineWidth(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 17)
	opt := Options{Samples: 50, Seed: 7, Workers: 2}
	canonN, canonE := Betweenness(g, opt) // Batch: 0 → full width
	for _, batch := range []int{-5, 64, 200} {
		o := opt
		o.Batch = batch
		gotN, gotE := Betweenness(g, o)
		for u := range canonN {
			if gotN[u] != canonN[u] {
				t.Fatalf("Batch=%d node %d: %v != Batch=0 %v", batch, u, gotN[u], canonN[u])
			}
		}
		for i := range canonE {
			if gotE[i] != canonE[i] {
				t.Fatalf("Batch=%d edge %d: %v != Batch=0 %v", batch, i, gotE[i], canonE[i])
			}
		}
		if got := Closeness(g, o); got[0] != Closeness(g, opt)[0] {
			t.Fatalf("Batch=%d closeness drifted: %v != %v", batch, got[0], Closeness(g, opt)[0])
		}
	}
}

// TestMSBFSKernelsBitIdenticalWithObs pins the instrumentation
// non-perturbation guarantee for the MS-BFS kernels: a live recorder — with
// the flight recorder installed as the par slot observer, the full PR-9
// surface — must not change one output bit at any Workers × Batch, and the
// msbfs.* counters, histograms and flight rings must actually move.
func TestMSBFSKernelsBitIdenticalWithObs(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 11)
	for _, workers := range []int{1, 4} {
		for _, batch := range []int{1, 64} {
			opt := Options{Samples: 80, Seed: 5, Workers: workers, Batch: batch}
			wantC := Closeness(g, opt)
			wantB := NodeBetweenness(g, opt)
			wantE := EdgeBetweennessScores(g, opt)
			rec := obs.New("test")
			prev := par.SetSlotObserver(rec.Flight())
			o := opt
			o.Obs = rec.Root()
			gotC := Closeness(g, o)
			gotB := NodeBetweenness(g, o)
			gotE := EdgeBetweennessScores(g, o)
			par.SetSlotObserver(prev)
			rec.Root().End()
			for u := range wantC {
				if gotC[u] != wantC[u] {
					t.Fatalf("workers=%d batch=%d closeness node %d: %v with obs != %v", workers, batch, u, gotC[u], wantC[u])
				}
				if gotB[u] != wantB[u] {
					t.Fatalf("workers=%d batch=%d betweenness node %d: %v with obs != %v", workers, batch, u, gotB[u], wantB[u])
				}
			}
			for i := range wantE {
				if gotE[i] != wantE[i] {
					t.Fatalf("workers=%d batch=%d edge betweenness %d: %v with obs != %v", workers, batch, i, gotE[i], wantE[i])
				}
			}
			vals := rec.CounterValues()
			for _, name := range []string{
				"closeness.sources_done", "betweenness.sources_done",
				"msbfs.batches_done", "msbfs.words_scanned",
				"brandes.edge_folds",
			} {
				if vals[name] == 0 {
					t.Fatalf("workers=%d batch=%d: counter %q missing or zero: %v", workers, batch, name, vals)
				}
			}
			hists := rec.HistogramValues()
			for _, name := range []string{"msbfs.batch_ns", "msbfs.batch_occupancy", "msbfs.level_width"} {
				if hists[name] == nil || hists[name].Count == 0 {
					t.Fatalf("workers=%d batch=%d: histogram %q missing or empty: %v", workers, batch, name, hists)
				}
			}
			if len(rec.Flight().Events()) == 0 {
				t.Fatalf("workers=%d batch=%d: flight ring stayed empty", workers, batch)
			}
		}
	}
}
