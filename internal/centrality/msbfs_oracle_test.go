package centrality

// Oracles and property tests for the MS-BFS kernels (Closeness and
// NodeBetweenness):
//
//   - closenessPerSource preserves the replaced one-BFS-per-node closeness
//     loop; the MS-BFS pivot accumulation reproduces it bit for bit in
//     exact mode because both compute the same integers.
//   - canonicalNodeBetweenness is the serial replay of the batched Brandes
//     summation order (ascending nodes within a level, ascending CSR
//     neighbors, fixed shard discipline); the production path must match it
//     bit for bit at every worker count and batch width.
//   - the seed map oracle (oracle_test.go) sums per-source dependencies in
//     queue order instead, so NodeBetweenness matches it only to float
//     tolerance — that cross-check bounds the reordering drift.

import (
	"math"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/obs"
	"edgeshed/internal/par"
)

// closenessPerSource is the replaced production kernel: one BFS per node,
// touched-entry reset, the Wasserman–Faust score written per source. It is
// the PerSource half of the Closeness benchmark pair and the bit-exact
// oracle for the MS-BFS path's exact mode.
func closenessPerSource(g *graph.Graph) []float64 {
	n := g.NumNodes()
	scores := make([]float64, n)
	if n <= 1 {
		return scores
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]graph.NodeID, 0, n)
	for su := 0; su < n; su++ {
		s := graph.NodeID(su)
		queue = queue[:0]
		dist[s] = 0
		queue = append(queue, s)
		var sum int64
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			sum += int64(dist[v])
			for _, x := range g.Neighbors(v) {
				if dist[x] < 0 {
					dist[x] = dist[v] + 1
					queue = append(queue, x)
				}
			}
		}
		r := len(queue)
		if r > 1 && sum > 0 {
			rm1 := float64(r - 1)
			scores[s] = (rm1 / float64(n-1)) * (rm1 / float64(sum))
		}
		for _, v := range queue {
			dist[v] = -1
		}
	}
	return scores
}

// canonicalBrandesSource runs one canonical-order Brandes pass from src:
// distances by plain BFS, levels enumerated ascending by node id, sigma
// pulled and delta pushed over ascending CSR neighbors — exactly the
// per-(node, bit) summation order of batchedBrandes.run.
func canonicalBrandesSource(c *graph.CSR, src graph.NodeID, dist []int32, sigma, delta []float64, acc []float64) {
	n := c.NumNodes()
	for i := range dist {
		dist[i] = -1
		sigma[i] = 0
		delta[i] = 0
	}
	dist[src] = 0
	queue := make([]graph.NodeID, 0, n)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range c.Targets[c.Offsets[v]:c.Offsets[v+1]] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	maxd := int32(0)
	for _, v := range queue {
		if dist[v] > maxd {
			maxd = dist[v]
		}
	}
	levels := make([][]graph.NodeID, maxd+1)
	for u := graph.NodeID(0); int(u) < n; u++ {
		if dist[u] >= 0 {
			levels[dist[u]] = append(levels[dist[u]], u)
		}
	}
	sigma[src] = 1
	for d := int32(1); d <= maxd; d++ {
		for _, u := range levels[d] {
			for _, nb := range c.Targets[c.Offsets[u]:c.Offsets[u+1]] {
				if dist[nb] == d-1 {
					sigma[u] += sigma[nb]
				}
			}
		}
	}
	for d := maxd; d >= 1; d-- {
		for _, u := range levels[d] {
			coeff := (1 + delta[u]) / sigma[u]
			for _, nb := range c.Targets[c.Offsets[u]:c.Offsets[u+1]] {
				if dist[nb] == d-1 {
					delta[nb] += sigma[nb] * coeff
				}
			}
		}
	}
	for u := 0; u < n; u++ {
		if dist[u] > 0 {
			acc[u] += delta[u]
		}
	}
}

// canonicalNodeBetweenness mirrors nodeBetweennessMSBFS serially: same
// source selection, same fixed shard assignment and in-order per-shard
// accumulation, same shard-order merge and scaling, over the canonical
// per-source pass above. Its result must equal the production path bit for
// bit at any Workers count and any Batch width.
func canonicalNodeBetweenness(g *graph.Graph, opt Options) []float64 {
	n := g.NumNodes()
	nodes := make([]float64, n)
	if n == 0 {
		return nodes
	}
	srcs, scale := opt.sources(n)
	if len(srcs) == 0 {
		return nodes
	}
	c := g.CSR()
	shards := par.Shards
	if shards > len(srcs) {
		shards = len(srcs)
	}
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	parts := make([][]float64, shards)
	for k := 0; k < shards; k++ {
		acc := make([]float64, n)
		for i := k; i < len(srcs); i += shards {
			canonicalBrandesSource(c, srcs[i], dist, sigma, delta, acc)
		}
		parts[k] = acc
	}
	for _, p := range parts {
		for i, v := range p {
			nodes[i] += v
		}
	}
	for i := range nodes {
		nodes[i] *= scale / 2
	}
	return nodes
}

func propertyGraphs() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"BA", gen.BarabasiAlbert(250, 3, 7)},
		{"ER", gen.ErdosRenyi(250, 700, 11)},
		{"WS", gen.WattsStrogatz(250, 6, 0.1, 13)},
		{"Disconnected", graph.MustFromEdges(80, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 10, V: 11},
			{U: 20, V: 21}, {U: 21, V: 22}, {U: 22, V: 23},
		})},
	}
}

var propertyConfigs = struct {
	workers []int
	batches []int
}{[]int{1, 2, 4, 7}, []int{1, 8, 64}}

// TestClosenessBitIdenticalToPerSourceOracle is the migration property
// test: exact-mode MS-BFS closeness must reproduce the replaced per-source
// kernel bit for bit across graphs, worker counts and batch widths.
func TestClosenessBitIdenticalToPerSourceOracle(t *testing.T) {
	for _, tg := range propertyGraphs() {
		want := closenessPerSource(tg.g)
		for _, workers := range propertyConfigs.workers {
			for _, batch := range propertyConfigs.batches {
				got := Closeness(tg.g, Options{Workers: workers, Batch: batch})
				for u := range want {
					if got[u] != want[u] {
						t.Fatalf("%s workers=%d batch=%d node %d: %v != oracle %v",
							tg.name, workers, batch, u, got[u], want[u])
					}
				}
			}
		}
	}
}

// TestClosenessSampledDeterministicAndSane: the sampled estimator is
// bit-identical across worker counts and batch widths, oversampling
// degenerates to the exact bits, and on a connected graph the estimate
// lands near the exact score.
func TestClosenessSampledDeterministicAndSane(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 5)
	opt := Options{Samples: 128, Seed: 9, Workers: 1, Batch: 64}
	want := Closeness(g, opt)
	for _, workers := range propertyConfigs.workers {
		for _, batch := range propertyConfigs.batches {
			o := opt
			o.Workers = workers
			o.Batch = batch
			got := Closeness(g, o)
			for u := range want {
				if got[u] != want[u] {
					t.Fatalf("workers=%d batch=%d node %d: %v != %v", workers, batch, u, got[u], want[u])
				}
			}
		}
	}
	exact := Closeness(g, Options{})
	over := Closeness(g, Options{Samples: 400, Seed: 3})
	for u := range exact {
		if over[u] != exact[u] {
			t.Fatalf("node %d: Samples=|V| %v != exact %v", u, over[u], exact[u])
		}
	}
	for u := range exact {
		if exact[u] == 0 {
			continue
		}
		if rel := math.Abs(want[u]-exact[u]) / exact[u]; rel > 0.5 {
			t.Fatalf("node %d: sampled %v vs exact %v (rel %.2f)", u, want[u], exact[u], rel)
		}
	}
}

// TestNodeBetweennessBitIdenticalToCanonicalOracle pins the batched Brandes
// path to its canonical serial oracle bit for bit, exact and sampled,
// across graphs, worker counts and batch widths — the any-worker-count,
// any-batch-width determinism guarantee.
func TestNodeBetweennessBitIdenticalToCanonicalOracle(t *testing.T) {
	modes := []struct {
		name string
		opt  Options
	}{
		{"exact", Options{}},
		{"sampled", Options{Samples: 60, Seed: 3}},
	}
	for _, tg := range propertyGraphs() {
		for _, mode := range modes {
			want := canonicalNodeBetweenness(tg.g, mode.opt)
			for _, workers := range propertyConfigs.workers {
				for _, batch := range propertyConfigs.batches {
					opt := mode.opt
					opt.Workers = workers
					opt.Batch = batch
					got := NodeBetweenness(tg.g, opt)
					for u := range want {
						if got[u] != want[u] {
							t.Fatalf("%s/%s workers=%d batch=%d node %d: %v != oracle %v",
								tg.name, mode.name, workers, batch, u, got[u], want[u])
						}
					}
				}
			}
		}
	}
}

// TestNodeBetweennessNearSeedOracle bounds the canonical reordering against
// the seed map-indexed oracle: same quantity, different summation tree, so
// the scores agree to tight float tolerance rather than bit-exactly.
func TestNodeBetweennessNearSeedOracle(t *testing.T) {
	for _, tg := range propertyGraphs() {
		for _, opt := range []Options{{}, {Samples: 60, Seed: 3}} {
			got := NodeBetweenness(tg.g, opt)
			want, _ := oracleBoth(tg.g, opt, true, false)
			for u := range want {
				diff := math.Abs(got[u] - want[u])
				if diff > 1e-9*math.Max(1, math.Abs(want[u])) {
					t.Fatalf("%s samples=%d node %d: msbfs %v vs seed oracle %v",
						tg.name, opt.Samples, u, got[u], want[u])
				}
			}
		}
	}
}

// TestMSBFSKernelsBitIdenticalWithObs pins the instrumentation
// non-perturbation guarantee for the MS-BFS kernels: a live recorder must
// not change one output bit, and the msbfs.* counters must actually move.
func TestMSBFSKernelsBitIdenticalWithObs(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 11)
	for _, workers := range []int{1, 4} {
		opt := Options{Samples: 80, Seed: 5, Workers: workers}
		wantC := Closeness(g, opt)
		wantB := NodeBetweenness(g, opt)
		rec := obs.New("test")
		o := opt
		o.Obs = rec.Root()
		gotC := Closeness(g, o)
		gotB := NodeBetweenness(g, o)
		rec.Root().End()
		for u := range wantC {
			if gotC[u] != wantC[u] {
				t.Fatalf("workers=%d closeness node %d: %v with obs != %v", workers, u, gotC[u], wantC[u])
			}
			if gotB[u] != wantB[u] {
				t.Fatalf("workers=%d betweenness node %d: %v with obs != %v", workers, u, gotB[u], wantB[u])
			}
		}
		vals := rec.CounterValues()
		for _, name := range []string{
			"closeness.sources_done", "betweenness.sources_done",
			"msbfs.batches_done", "msbfs.words_scanned",
		} {
			if vals[name] == 0 {
				t.Fatalf("workers=%d: counter %q missing or zero: %v", workers, name, vals)
			}
		}
	}
}
