package centrality

// Batched node betweenness on the bit-parallel MS-BFS engine. One traversal
// carries up to 64 sources; the sigma (shortest-path count) and delta
// (dependency) phases then run per batch over the discovered levels, with
// one float64 per (node, batch bit) pair, replacing 64 per-source BFS
// relaunches — and 64 O(|V|) state re-zeroings — with one shared sweep plus
// touched-row clearing.
//
// Determinism. Sigma values are integer-valued floats (path counts), exact
// under addition in any order. Delta values are genuinely fractional, so
// their summation order must be a function of (graph, Options) alone:
//
//   - the traversal runs in canonical mode, so every level lists its nodes
//     ascending, and within a node the CSR neighbor scan ascends;
//   - sources keep the fixed par.Shards accumulation discipline (source i
//     belongs to shard i mod par.Shards), each shard's source list is
//     batched and folded IN ORDER by one owner, and shard partials merge in
//     shard index order.
//
// Batch bits never mix — per-bit arithmetic is independent of how sources
// are grouped into batches — and the per-shard fold adds each source's
// contribution to a node in shard-source order whatever the batch width, so
// the scores are bit-identical at any Workers count AND any Batch width.
// The canonical order differs from the seed per-source queue order, so
// NodeBetweenness is pinned against its own canonical serial oracle
// (bit-exact) and against the preserved seed map oracle within float
// tolerance; see oracle_test.go and DESIGN.md §10.

import (
	"math/bits"
	"time"

	"edgeshed/internal/graph"
	"edgeshed/internal/msbfs"
	"edgeshed/internal/par"
)

// batchedBrandes is the per-worker scratch of the MS-BFS Brandes pass:
// sigma and delta hold one float64 per (node, batch bit) pair — row u is
// sigma[u*width : (u+1)*width] — and lvl is the dense word array holding,
// while one level is processed, each node's first-arrival bits at the level
// below it. Rows are cleared lazily: only nodes the traversal visited.
type batchedBrandes struct {
	c     *graph.CSR
	tr    *msbfs.Traversal
	width int
	sigma []float64
	delta []float64
	lvl   []uint64
	// srcMask marks each batch source's own row bit, excluded from the fold
	// (a source accumulates no dependency on itself); coeff is the per-bit
	// (1+delta)/sigma row of the node being expanded backward.
	srcMask []uint64
	coeff   []float64
}

// newBatchedBrandes returns scratch for width-wide batches over c.
func newBatchedBrandes(c *graph.CSR, width int) *batchedBrandes {
	n := c.NumNodes()
	return &batchedBrandes{
		c:       c,
		tr:      msbfs.New(c, width, true),
		width:   width,
		sigma:   make([]float64, n*width),
		delta:   make([]float64, n*width),
		lvl:     make([]uint64, n),
		srcMask: make([]uint64, n),
		coeff:   make([]float64, width),
	}
}

// run traverses one batch and folds every source's node dependencies into
// acc: forward sigma pull per level ascending, backward delta push per
// level descending, both in the canonical order the package comment
// describes, then a touched-rows-only fold and clear.
func (st *batchedBrandes) run(srcs []graph.NodeID, acc []float64) {
	tr, W := st.tr, st.width
	tr.Run(srcs)
	offsets, targets := st.c.Offsets, st.c.Targets
	sigma, delta, lvl := st.sigma, st.delta, st.lvl

	for i, s := range srcs {
		sigma[int(s)*W+i] = 1
		st.srcMask[s] |= uint64(1) << uint(i)
	}
	numLevels := tr.NumLevels()
	// Forward: each level-d arrival pulls sigma from its distance-(d-1)
	// neighbors, neighbor-outer so every bit's contributions arrive in
	// ascending CSR order.
	for d := 1; d < numLevels; d++ {
		pn, pw := tr.Level(d - 1)
		for i, v := range pn {
			lvl[v] = pw[i]
		}
		nodes, words := tr.Level(d)
		for i, u := range nodes {
			wu := words[i]
			row := sigma[int(u)*W : int(u)*W+W]
			for _, nb := range targets[offsets[u]:offsets[u+1]] {
				m := wu & lvl[nb]
				if m == 0 {
					continue
				}
				nrow := sigma[int(nb)*W : int(nb)*W+W]
				for m != 0 {
					s := bits.TrailingZeros64(m)
					m &= m - 1
					row[s] += nrow[s]
				}
			}
		}
		for _, v := range pn {
			lvl[v] = 0
		}
	}
	// Backward: levels descending; within a level nodes ascend (canonical
	// traversal order) and each pushes its dependency to its
	// distance-(d-1) predecessors in ascending CSR order. All of a
	// predecessor's successors for one bit sit in a single level, so for
	// every (node, bit) slot the additions happen in ascending successor
	// order — the order the serial canonical oracle replays.
	for d := numLevels - 1; d >= 1; d-- {
		pn, pw := tr.Level(d - 1)
		for i, v := range pn {
			lvl[v] = pw[i]
		}
		nodes, words := tr.Level(d)
		for i, u := range nodes {
			wu := words[i]
			srow := sigma[int(u)*W : int(u)*W+W]
			drow := delta[int(u)*W : int(u)*W+W]
			m := wu
			for m != 0 {
				s := bits.TrailingZeros64(m)
				m &= m - 1
				st.coeff[s] = (1 + drow[s]) / srow[s]
			}
			for _, nb := range targets[offsets[u]:offsets[u+1]] {
				mm := wu & lvl[nb]
				if mm == 0 {
					continue
				}
				nsrow := sigma[int(nb)*W : int(nb)*W+W]
				ndrow := delta[int(nb)*W : int(nb)*W+W]
				for mm != 0 {
					s := bits.TrailingZeros64(mm)
					mm &= mm - 1
					ndrow[s] += nsrow[s] * st.coeff[s]
				}
			}
		}
		for _, v := range pn {
			lvl[v] = 0
		}
	}
	// Fold visited rows into acc — node-outer, bit-inner ascending, so each
	// node receives its per-source contributions in shard-source order
	// regardless of batch width (unreached slots add +0.0, a bitwise
	// no-op on the non-negative accumulator) — and clear them for the next
	// batch. Only the first len(srcs) slots of a row are ever written.
	nb := len(srcs)
	n := st.c.NumNodes()
	for u := 0; u < n; u++ {
		if tr.Visited(graph.NodeID(u)) == 0 {
			continue
		}
		srow := sigma[u*W : u*W+W]
		drow := delta[u*W : u*W+W]
		skip := st.srcMask[u]
		for s := 0; s < nb; s++ {
			if skip>>uint(s)&1 == 0 {
				acc[u] += drow[s]
			}
			srow[s] = 0
			drow[s] = 0
		}
	}
	for _, s := range srcs {
		st.srcMask[s] = 0
	}
}

// nodeBetweennessMSBFS is the batched driver behind NodeBetweenness: the
// same source selection, fixed-shard accumulation and scaling as both(),
// with each shard's source list batched through one MS-BFS Brandes state.
func nodeBetweennessMSBFS(g *graph.Graph, opt Options) []float64 {
	n := g.NumNodes()
	nodes := make([]float64, n)
	if n == 0 {
		return nodes
	}
	srcs, scale := opt.sources(n)
	if len(srcs) == 0 {
		return nodes
	}
	c := g.CSR()
	width := msbfs.Width(opt.Batch)
	shards := par.Shards
	if shards > len(srcs) {
		shards = len(srcs)
	}
	workers := par.Workers(opt.Workers, shards)
	sp := opt.Obs.Start("betweenness")
	defer sp.End()
	sp.SetTotal(int64(len(srcs)))
	srcCtr := sp.Counter("betweenness.sources_done")
	batchCtr := sp.Counter("msbfs.batches_done")
	wordCtr := sp.Counter("msbfs.words_scanned")
	swCtr := sp.Counter("msbfs.direction_switches")
	parts := make([][]float64, shards)
	par.Run(workers, func(w int) {
		var t0 time.Time
		if sp.Enabled() {
			t0 = time.Now()
		}
		var done int64
		st := newBatchedBrandes(c, width)
		shardSrcs := make([]graph.NodeID, 0, (len(srcs)+shards-1)/shards)
		for k := w; k < shards; k += workers {
			acc := make([]float64, n)
			shardSrcs = shardSrcs[:0]
			for i := k; i < len(srcs); i += shards {
				shardSrcs = append(shardSrcs, srcs[i])
			}
			for lo := 0; lo < len(shardSrcs); lo += width {
				hi := min(lo+width, len(shardSrcs))
				st.run(shardSrcs[lo:hi], acc)
				done += int64(hi - lo)
				sp.Done(int64(hi - lo))
			}
			parts[k] = acc
		}
		if sp.Enabled() {
			s := st.tr.Stats()
			srcCtr.AddAt(w, done)
			batchCtr.AddAt(w, s.Batches)
			wordCtr.AddAt(w, s.WordsScanned)
			swCtr.AddAt(w, s.Switches)
			sp.WorkerBusy(w, time.Since(t0))
		}
	})
	for _, p := range parts {
		for i, v := range p {
			nodes[i] += v
		}
	}
	// Each unordered pair is seen from both endpoints in an exact run:
	// halve. Sampled runs estimate the same quantity via scale/2.
	for i := range nodes {
		nodes[i] *= scale / 2
	}
	return nodes
}
