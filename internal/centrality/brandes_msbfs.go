package centrality

// Batched node AND edge betweenness on the bit-parallel MS-BFS engine. One
// traversal carries up to 64 sources; the sigma (shortest-path count) and
// delta (dependency) phases then run per batch over the discovered levels,
// with one float64 per (node, batch bit) pair, replacing 64 per-source BFS
// relaunches — and 64 O(|V|) state re-zeroings — with one shared sweep plus
// touched-row clearing.
//
// Determinism. Sigma values are integer-valued floats (path counts), exact
// under addition in any order. Delta values are genuinely fractional, so
// their summation order must be a function of (graph, Options) alone:
//
//   - the traversal runs in canonical mode, so every level lists its nodes
//     ascending, and within a node the CSR neighbor scan ascends;
//   - sources keep a fixed par.Shards accumulation discipline: the source
//     list is put in a canonical locality order (a pure function of the
//     graph — see orderSourcesByLocality), split into par.Shards contiguous
//     blocks, each block batched and folded IN ORDER by one owner, and the
//     shard partials merge in shard index order.
//
// Batch bits never mix — per-bit arithmetic is independent of how sources
// are grouped into batches — and the per-shard folds add each source's
// contribution to a node (or a canonical edge id) in shard-source order
// whatever the batch width, so both score arrays are bit-identical at any
// Workers count AND any Batch width.
//
// Edge dependencies need one extra care the node fold does not: a
// dependency crosses a specific DAG edge, and which direction an undirected
// edge is traversed differs per source. Folding contributions at the moment
// the backward sweep pushes them would order each edge's terms by level and
// by endpoint — an order that depends on how sources are grouped into
// batches. Instead the backward sweep only RECORDS each slot's crossing
// bits (slotMask), and a separate slot-outer fold walks the CSR in
// canonical order — owner node ascending, each edge at its smaller
// endpoint, crossing bits ascending — so every edge receives its per-source
// terms in shard-source order at any batch width. See DESIGN.md §10.4.
//
// The canonical order differs from the seed per-source queue order, so both
// kernels are pinned against their own canonical serial oracles (bit-exact)
// and against the preserved seed per-source path within float tolerance;
// see oracle_test.go, msbfs_oracle_test.go and DESIGN.md §10.

import (
	"math/bits"
	"sort"
	"time"

	"edgeshed/internal/graph"
	"edgeshed/internal/msbfs"
	"edgeshed/internal/obs"
	"edgeshed/internal/par"
)

// orderSourcesByLocality reorders srcs in place by a canonical BFS rank:
// one serial BFS over the CSR from node 0 (restarting at the lowest
// unvisited id per component) ranks every node, and sources sort by that
// rank. Sources adjacent in the ordering are close in the graph, so the
// sources sharing one MS-BFS batch have correlated distance profiles: by
// the triangle inequality a node's levels across a batch spread at most the
// batch's diameter, which means fewer level memberships per node, fewer
// adjacency rescans in the sigma/delta sweeps, and denser crossing masks
// per scan. The rank is a pure function of the graph — no Workers, Batch or
// Samples input — so the ordering never threatens the determinism
// discipline; it only decides which sources travel together.
func orderSourcesByLocality(c *graph.CSR, srcs []graph.NodeID) {
	n := c.NumNodes()
	rank := make([]int32, n)
	for i := range rank {
		rank[i] = -1
	}
	queue := make([]graph.NodeID, 0, n)
	next := int32(0)
	for root := 0; root < n; root++ {
		if rank[root] >= 0 {
			continue
		}
		rank[root] = next
		next++
		queue = append(queue[:0], graph.NodeID(root))
		for h := 0; h < len(queue); h++ {
			u := queue[h]
			for _, v := range c.Targets[c.Offsets[u]:c.Offsets[u+1]] {
				if rank[v] < 0 {
					rank[v] = next
					next++
					queue = append(queue, v)
				}
			}
		}
	}
	sort.Slice(srcs, func(i, j int) bool { return rank[srcs[i]] < rank[srcs[j]] })
}

// batchedBrandes is the per-worker scratch of the MS-BFS Brandes pass:
// sigma and delta hold one float64 per (node, batch bit) pair — row u is
// sigma[u*width : (u+1)*width] — and lvl is the dense word array holding,
// while one level is processed, each node's first-arrival bits at the level
// below it. Rows are cleared lazily: only nodes the traversal visited.
type batchedBrandes struct {
	c     *graph.CSR
	tr    *msbfs.Traversal
	width int
	sigma []float64
	delta []float64
	lvl   []uint64
	// srcMask marks each batch source's own row bit, excluded from the fold
	// (a source accumulates no dependency on itself); coeff is the per-bit
	// (1+delta)/sigma row of the node being expanded backward.
	srcMask []uint64
	coeff   []float64
	// slotMask is the edge path's crossing record, one word per CSR slot:
	// bit s is set on slot k (owned by node u, targeting v) when the
	// backward sweep pushed source s's dependency across the DAG edge v→u,
	// i.e. u is the deeper endpoint for source s. nil on the node-only
	// path, and cleared back to zero by the edge fold itself.
	slotMask []uint64
	// edgeFolds tallies edge dependency terms folded across every run, for
	// the "brandes.edge_folds" counter. Plain local state — the driver folds
	// it into the span only when observability is on.
	edgeFolds int64
}

// newBatchedBrandes returns scratch for width-wide batches over c. The
// slotMask crossing record (8 bytes per CSR slot) is only allocated when
// the caller wants edge scores.
func newBatchedBrandes(c *graph.CSR, width int, wantEdges bool) *batchedBrandes {
	n := c.NumNodes()
	st := &batchedBrandes{
		c:       c,
		tr:      msbfs.New(c, width, true),
		width:   width,
		sigma:   make([]float64, n*width),
		delta:   make([]float64, n*width),
		lvl:     make([]uint64, n),
		srcMask: make([]uint64, n),
		coeff:   make([]float64, width),
	}
	if wantEdges {
		st.slotMask = make([]uint64, c.NumSlots())
	}
	return st
}

// run traverses one batch and folds every source's dependencies into
// nodeAcc (per node) and edgeAcc (per canonical edge id), either of which
// may be nil: forward sigma pull per level ascending, backward delta push
// per level descending, both in the canonical order the package comment
// describes, then touched-rows-only folds and clears.
func (st *batchedBrandes) run(srcs []graph.NodeID, nodeAcc, edgeAcc []float64) {
	tr, W := st.tr, st.width
	tr.Run(srcs)
	offsets, targets := st.c.Offsets, st.c.Targets
	sigma, lvl := st.sigma, st.lvl

	nb := len(srcs)
	// full is the ragged-batch occupancy mask: a neighbor mask equal to it
	// means every batch bit crosses, unlocking the straight row walks below.
	full := ^uint64(0) >> uint(64-nb)
	for i, s := range srcs {
		sigma[int(s)*W+i] = 1
		st.srcMask[s] |= uint64(1) << uint(i)
	}
	numLevels := tr.NumLevels()
	// Forward: each level-d arrival pulls sigma from its distance-(d-1)
	// neighbors, neighbor-outer so every bit's contributions arrive in
	// ascending CSR order. Per-bit sums are independent, so when every batch
	// bit crosses the bit-scan loop collapses to a straight row walk with
	// identical bits.
	for d := 1; d < numLevels; d++ {
		pn, pw := tr.Level(d - 1)
		for i, v := range pn {
			lvl[v] = pw[i]
		}
		nodes, words := tr.Level(d)
		for i, u := range nodes {
			wu := words[i]
			row := sigma[int(u)*W : int(u)*W+W]
			for _, nbr := range targets[offsets[u]:offsets[u+1]] {
				m := wu & lvl[nbr]
				if m == 0 {
					continue
				}
				nrow := sigma[int(nbr)*W : int(nbr)*W+W]
				if m == full {
					for s, v := range nrow[:nb] {
						row[s] += v
					}
					continue
				}
				for m != 0 {
					s := bits.TrailingZeros64(m)
					m &= m - 1
					row[s] += nrow[s]
				}
			}
		}
		for _, v := range pn {
			lvl[v] = 0
		}
	}
	// Backward: levels descending; within a level nodes ascend (canonical
	// traversal order) and each pushes its dependency to its
	// distance-(d-1) predecessors in ascending CSR order. All of a
	// predecessor's successors for one bit sit in a single level, so for
	// every (node, bit) slot the additions happen in ascending successor
	// order — the order the serial canonical oracle replays. The edge
	// variant additionally records each slot's crossing bits for the fold.
	if edgeAcc != nil {
		st.backwardEdges(numLevels, nb, full, nodeAcc == nil)
		st.foldEdges(nb, nodeAcc, edgeAcc)
	} else {
		st.backward(numLevels, nb, full)
		st.foldNodes(nb, nodeAcc)
	}
	for _, s := range srcs {
		st.srcMask[s] = 0
	}
}

// backward is the node-only dependency sweep (no crossing record).
func (st *batchedBrandes) backward(numLevels, nb int, full uint64) {
	tr, W := st.tr, st.width
	offsets, targets := st.c.Offsets, st.c.Targets
	sigma, delta, lvl := st.sigma, st.delta, st.lvl
	for d := numLevels - 1; d >= 1; d-- {
		pn, pw := tr.Level(d - 1)
		for i, v := range pn {
			lvl[v] = pw[i]
		}
		nodes, words := tr.Level(d)
		for i, u := range nodes {
			wu := words[i]
			srow := sigma[int(u)*W : int(u)*W+W]
			drow := delta[int(u)*W : int(u)*W+W]
			m := wu
			for m != 0 {
				s := bits.TrailingZeros64(m)
				m &= m - 1
				st.coeff[s] = (1 + drow[s]) / srow[s]
			}
			for _, nbr := range targets[offsets[u]:offsets[u+1]] {
				mm := wu & lvl[nbr]
				if mm == 0 {
					continue
				}
				nsrow := sigma[int(nbr)*W : int(nbr)*W+W]
				ndrow := delta[int(nbr)*W : int(nbr)*W+W]
				if mm == full {
					for s, v := range nsrow[:nb] {
						ndrow[s] += v * st.coeff[s]
					}
					continue
				}
				for mm != 0 {
					s := bits.TrailingZeros64(mm)
					mm &= mm - 1
					ndrow[s] += nsrow[s] * st.coeff[s]
				}
			}
		}
		for _, v := range pn {
			lvl[v] = 0
		}
	}
}

// backwardEdges is the dependency sweep with the crossing record: identical
// per-(node, bit) arithmetic to backward, plus slotMask[k] |= mm on every
// CSR slot a dependency crosses. The record is direction-resolved — slot k
// belongs to the successor (deeper) endpoint — which is exactly what the
// edge fold needs to pick sigma(pred)·coeff(succ) per bit.
//
// With inplace set (the edges-only path, where no caller needs the raw
// delta sums), each visited delta slot is overwritten with its coefficient
// (1+delta)/sigma the moment the sweep expands its node: by then bit s of
// node u receives no further pushes — its successors all sit one level
// deeper and were expanded earlier in the descending sweep — so the fold
// can skip its own transform pass. The value is computed from the same
// operands either way; only where it is stored changes, so scores are
// bit-identical with the flag on or off.
func (st *batchedBrandes) backwardEdges(numLevels, nb int, full uint64, inplace bool) {
	tr, W := st.tr, st.width
	offsets, targets := st.c.Offsets, st.c.Targets
	sigma, delta, lvl := st.sigma, st.delta, st.lvl
	slotMask := st.slotMask
	for d := numLevels - 1; d >= 1; d-- {
		pn, pw := tr.Level(d - 1)
		for i, v := range pn {
			lvl[v] = pw[i]
		}
		nodes, words := tr.Level(d)
		for i, u := range nodes {
			wu := words[i]
			srow := sigma[int(u)*W : int(u)*W+W]
			drow := delta[int(u)*W : int(u)*W+W]
			coeff := st.coeff
			if inplace {
				coeff = drow
			}
			for m := wu; m != 0; {
				s := bits.TrailingZeros64(m)
				m &= m - 1
				coeff[s] = (1 + drow[s]) / srow[s]
			}
			lo, hi := offsets[u], offsets[u+1]
			for k, nbr := range targets[lo:hi] {
				mm := wu & lvl[nbr]
				if mm == 0 {
					continue
				}
				slotMask[lo+int32(k)] |= mm
				nsrow := sigma[int(nbr)*W : int(nbr)*W+W]
				ndrow := delta[int(nbr)*W : int(nbr)*W+W]
				if mm == full {
					for s, v := range nsrow[:nb] {
						ndrow[s] += v * coeff[s]
					}
					continue
				}
				for mm != 0 {
					s := bits.TrailingZeros64(mm)
					mm &= mm - 1
					ndrow[s] += nsrow[s] * coeff[s]
				}
			}
		}
		for _, v := range pn {
			lvl[v] = 0
		}
	}
}

// foldNodes folds visited rows into acc — node-outer, bit-inner ascending,
// so each node receives its per-source contributions in shard-source order
// regardless of batch width (unreached slots add +0.0, a bitwise no-op on
// the non-negative accumulator) — and clears them for the next batch. Only
// the first nb slots of a row are ever written.
func (st *batchedBrandes) foldNodes(nb int, acc []float64) {
	W := st.width
	sigma, delta := st.sigma, st.delta
	visit := st.tr.Visit()
	for u, vw := range visit {
		if vw == 0 {
			continue
		}
		srow := sigma[u*W : u*W+W]
		drow := delta[u*W : u*W+W]
		skip := st.srcMask[u]
		for s := 0; s < nb; s++ {
			if skip>>uint(s)&1 == 0 {
				acc[u] += drow[s]
			}
			srow[s] = 0
			drow[s] = 0
		}
	}
}

// foldEdges is the edge-path epilogue, two sweeps:
//
// Sweep 1 runs only when node scores are also wanted: it folds node
// dependencies in exactly foldNodes' order, then transforms each visited
// delta slot in place into its coefficient (1+delta)/sigma — computed once
// per (node, bit), the same operands and operations the serial oracle
// replays per edge term. On the edges-only path backwardEdges already
// stored the coefficients in place (same arithmetic), so the sweep is
// skipped entirely.
//
// Sweep 2 walks the CSR in canonical order — owner node ascending, each
// edge processed at its smaller endpoint — and adds, crossing-bits
// ascending, sigma(pred)·coeff(succ) into the slot's canonical edge id.
// The union of the slot's mask and its mate's covers every source whose
// dependency crossed the edge in either direction, each exactly once, so
// per edge the terms arrive in shard-source order at any batch width.
// Scratch is retired in the same pass: both slot words are cleared when an
// edge is folded, and a node's rows are cleared when its slots are done —
// safe because iteration u only reads rows of u and of neighbors above it.
func (st *batchedBrandes) foldEdges(nb int, nodeAcc, edgeAcc []float64) {
	W := st.width
	c := st.c
	offsets, targets, edgeID, mate := c.Offsets, c.Targets, c.EdgeID, c.Mate
	sigma, delta, slotMask := st.sigma, st.delta, st.slotMask
	visit := st.tr.Visit()
	if nodeAcc != nil {
		for u, vw := range visit {
			if vw == 0 {
				continue
			}
			srow := sigma[u*W : u*W+W]
			drow := delta[u*W : u*W+W]
			skip := st.srcMask[u]
			for s := 0; s < nb; s++ {
				if skip>>uint(s)&1 == 0 {
					nodeAcc[u] += drow[s]
				}
			}
			for m := vw; m != 0; {
				s := bits.TrailingZeros64(m)
				m &= m - 1
				drow[s] = (1 + drow[s]) / srow[s]
			}
		}
	}
	folds := int64(0)
	for u, vw := range visit {
		if vw == 0 {
			continue
		}
		usig := sigma[u*W : u*W+W]
		ucoe := delta[u*W : u*W+W]
		lo, hi := offsets[u], offsets[u+1]
		for k := lo; k < hi; k++ {
			v := targets[k]
			if int(v) <= u {
				// The edge is folded (and its scratch cleared) at its
				// smaller endpoint; this slot's mask was already retired
				// through its mate.
				continue
			}
			m1 := slotMask[k]       // bits where u is the successor (v → u crossing)
			m2 := slotMask[mate[k]] // bits where v is the successor (u → v crossing)
			un := m1 | m2
			if un == 0 {
				continue
			}
			e := edgeID[k]
			vsig := sigma[int(v)*W : int(v)*W+W]
			vcoe := delta[int(v)*W : int(v)*W+W]
			acc := edgeAcc[e]
			// Locality-ordered batches mostly agree on an edge's direction
			// (which endpoint is deeper), so the single-direction cases get
			// branch-free loops. All three walk the same bits ascending and
			// add the same per-bit term, so the sums are bit-identical.
			switch {
			case m2 == 0:
				for un != 0 {
					s := bits.TrailingZeros64(un)
					un &= un - 1
					acc += vsig[s] * ucoe[s]
				}
			case m1 == 0:
				for un != 0 {
					s := bits.TrailingZeros64(un)
					un &= un - 1
					acc += usig[s] * vcoe[s]
				}
			default:
				for un != 0 {
					s := bits.TrailingZeros64(un)
					un &= un - 1
					if m1>>uint(s)&1 != 0 {
						acc += vsig[s] * ucoe[s]
					} else {
						acc += usig[s] * vcoe[s]
					}
				}
			}
			edgeAcc[e] = acc
			folds += int64(bits.OnesCount64(m1 | m2))
			slotMask[k] = 0
			slotMask[mate[k]] = 0
		}
		for s := 0; s < nb; s++ {
			usig[s] = 0
			ucoe[s] = 0
		}
	}
	st.edgeFolds += folds
}

// msbfsBetweenness is the batched driver behind NodeBetweenness,
// EdgeBetweennessScores and Betweenness: the same source selection,
// fixed-shard accumulation and scaling as the preserved per-source both(),
// with each shard's source list batched through one MS-BFS Brandes state.
func msbfsBetweenness(g *graph.Graph, opt Options, wantNodes, wantEdges bool) ([]float64, []float64) {
	n := g.NumNodes()
	var nodes, edges []float64
	if wantNodes {
		nodes = make([]float64, n)
	}
	if wantEdges {
		edges = make([]float64, g.NumEdges())
	}
	if n == 0 {
		// Defensive: nothing to traverse regardless of Samples/Workers.
		return nodes, edges
	}
	srcs, scale := opt.sources(n)
	if len(srcs) == 0 {
		return nodes, edges
	}
	c := g.CSR()
	orderSourcesByLocality(c, srcs)
	width := msbfs.Width(opt.Batch)
	shards := par.Shards
	if shards > len(srcs) {
		shards = len(srcs)
	}
	workers := par.Workers(opt.Workers, shards)
	sp := opt.Obs.Start("betweenness")
	defer sp.End()
	sp.SetTotal(int64(len(srcs)))
	srcCtr := sp.Counter("betweenness.sources_done")
	batchCtr := sp.Counter("msbfs.batches_done")
	wordCtr := sp.Counter("msbfs.words_scanned")
	swCtr := sp.Counter("msbfs.direction_switches")
	foldCtr := sp.Counter("brandes.edge_folds")
	batchNs := sp.Histogram("msbfs.batch_ns")
	batchOcc := sp.Histogram("msbfs.batch_occupancy")
	batchMk := sp.Marker(obs.EvBatch, "betweenness")
	switchMk := sp.Marker(obs.EvDirSwitch, "betweenness")
	type partial struct {
		nodes, edges []float64
	}
	parts := make([]partial, shards)
	par.Run(workers, func(w int) {
		var t0 time.Time
		if sp.Enabled() {
			t0 = time.Now()
		}
		var done int64
		st := newBatchedBrandes(c, width, wantEdges)
		if sp.Enabled() {
			st.tr.OnSwitch = func(level int, bottomUp bool) {
				dir := int64(0)
				if bottomUp {
					dir = 1
				}
				switchMk.Emit(w, int64(level)<<1|dir)
			}
		}
		for k := w; k < shards; k += workers {
			var nodeAcc, edgeAcc []float64
			if wantNodes {
				nodeAcc = make([]float64, n)
			}
			if wantEdges {
				edgeAcc = make([]float64, g.NumEdges())
			}
			blo, bhi := par.Block(len(srcs), shards, k)
			shardSrcs := srcs[blo:bhi]
			for lo := 0; lo < len(shardSrcs); lo += width {
				hi := min(lo+width, len(shardSrcs))
				if sp.Enabled() {
					b0 := time.Now()
					st.run(shardSrcs[lo:hi], nodeAcc, edgeAcc)
					batchNs.ObserveAt(w, time.Since(b0).Nanoseconds())
					batchOcc.ObserveAt(w, int64(hi-lo))
					batchMk.Emit(w, int64(hi-lo))
				} else {
					st.run(shardSrcs[lo:hi], nodeAcc, edgeAcc)
				}
				done += int64(hi - lo)
				sp.Done(int64(hi - lo))
			}
			parts[k] = partial{nodes: nodeAcc, edges: edgeAcc}
		}
		if sp.Enabled() {
			s := st.tr.Stats()
			srcCtr.AddAt(w, done)
			batchCtr.AddAt(w, s.Batches)
			wordCtr.AddAt(w, s.WordsScanned)
			swCtr.AddAt(w, s.Switches)
			foldCtr.AddAt(w, st.edgeFolds)
			sp.WorkerBusy(w, time.Since(t0))
		}
	})
	if wantNodes {
		for _, p := range parts {
			for i, v := range p.nodes {
				nodes[i] += v
			}
		}
		// Each unordered pair is seen from both endpoints in an exact run:
		// halve. Sampled runs estimate the same quantity via scale/2.
		for i := range nodes {
			nodes[i] *= scale / 2
		}
	}
	if wantEdges {
		for _, p := range parts {
			for i, v := range p.edges {
				edges[i] += v
			}
		}
		for i := range edges {
			edges[i] *= scale / 2
		}
	}
	return nodes, edges
}
