package centrality_test

import (
	"fmt"

	"edgeshed/internal/centrality"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

// ExampleEdgeBetweenness finds the bridge between two cliques — the edge
// CRR's Phase 1 protects.
func ExampleEdgeBetweenness() {
	b := graph.NewBuilder(8)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.TryAddEdge(graph.NodeID(u), graph.NodeID(v))
			b.TryAddEdge(graph.NodeID(u+4), graph.NodeID(v+4))
		}
	}
	b.TryAddEdge(0, 4) // the bridge
	g := b.Graph()
	scores := centrality.EdgeBetweenness(g, centrality.Options{})
	best, bestScore := graph.Edge{}, -1.0
	for i := 0; i < scores.Len(); i++ {
		if scores.Scores[i] > bestScore {
			best, bestScore = scores.Edge(i), scores.Scores[i]
		}
	}
	fmt.Println("highest-betweenness edge:", best)
	// Output:
	// highest-betweenness edge: (0,4)
}

// ExampleNodeBetweenness scores the middle of a path highest.
func ExampleNodeBetweenness() {
	g := gen.Path(5)
	bc := centrality.NodeBetweenness(g, centrality.Options{})
	fmt.Println("center score:", bc[2])
	fmt.Println("end score:", bc[0])
	// Output:
	// center score: 4
	// end score: 0
}
