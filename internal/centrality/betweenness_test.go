package centrality

import (
	"math"
	"sort"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) < eps }

func TestNodeBetweennessPath(t *testing.T) {
	g := gen.Path(5)
	got := NodeBetweenness(g, Options{})
	want := []float64{0, 3, 4, 3, 0}
	for u := range want {
		if !approx(got[u], want[u]) {
			t.Errorf("node %d: got %v, want %v", u, got[u], want[u])
		}
	}
}

func TestEdgeBetweennessPath(t *testing.T) {
	g := gen.Path(5)
	es := EdgeBetweenness(g, Options{})
	want := map[graph.Edge]float64{
		{U: 0, V: 1}: 4, {U: 1, V: 2}: 6, {U: 2, V: 3}: 6, {U: 3, V: 4}: 4,
	}
	for e, w := range want {
		if got := es.Of(e); !approx(got, w) {
			t.Errorf("edge %v: got %v, want %v", e, got, w)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	g := gen.Star(5) // hub 0, leaves 1..4
	nodes, edges := Betweenness(g, Options{})
	if !approx(nodes[0], 6) { // C(4,2) leaf pairs
		t.Errorf("hub betweenness = %v, want 6", nodes[0])
	}
	for u := 1; u < 5; u++ {
		if !approx(nodes[u], 0) {
			t.Errorf("leaf %d betweenness = %v, want 0", u, nodes[u])
		}
	}
	for i, got := range edges {
		if !approx(got, 4) {
			t.Errorf("edge %v betweenness = %v, want 4", g.Edges()[i], got)
		}
	}
}

func TestBetweennessCycle5(t *testing.T) {
	g := gen.Cycle(5)
	nodes, edges := Betweenness(g, Options{})
	for u := range nodes {
		if !approx(nodes[u], 1) {
			t.Errorf("node %d betweenness = %v, want 1", u, nodes[u])
		}
	}
	for i, got := range edges {
		if !approx(got, 3) {
			t.Errorf("edge %v betweenness = %v, want 3", g.Edges()[i], got)
		}
	}
}

func TestBetweennessCycle4MultiplePaths(t *testing.T) {
	// C4 has pairs with two shortest paths; dependencies split evenly.
	g := gen.Cycle(4)
	nodes, edges := Betweenness(g, Options{})
	for u := range nodes {
		if !approx(nodes[u], 0.5) {
			t.Errorf("node %d betweenness = %v, want 0.5", u, nodes[u])
		}
	}
	for i, got := range edges {
		if !approx(got, 2) {
			t.Errorf("edge %v betweenness = %v, want 2", g.Edges()[i], got)
		}
	}
}

func TestBetweennessComplete(t *testing.T) {
	g := gen.Complete(4)
	nodes, edges := Betweenness(g, Options{})
	for u := range nodes {
		if !approx(nodes[u], 0) {
			t.Errorf("node %d betweenness = %v, want 0 in K4", u, nodes[u])
		}
	}
	for i, got := range edges {
		if !approx(got, 1) {
			t.Errorf("edge %v betweenness = %v, want 1 in K4", g.Edges()[i], got)
		}
	}
}

func TestBetweennessDisconnected(t *testing.T) {
	// Two disjoint paths 0-1-2 and 3-4-5: middles get 1, no cross terms.
	g := graph.MustFromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}})
	nodes := NodeBetweenness(g, Options{})
	want := []float64{0, 1, 0, 0, 1, 0}
	for u := range want {
		if !approx(nodes[u], want[u]) {
			t.Errorf("node %d: got %v, want %v", u, nodes[u], want[u])
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 17)
	serialN, serialE := Betweenness(g, Options{Workers: 1})
	parN, parE := Betweenness(g, Options{Workers: 8})
	for u := range serialN {
		if math.Abs(serialN[u]-parN[u]) > 1e-6 {
			t.Fatalf("node %d: serial %v != parallel %v", u, serialN[u], parN[u])
		}
	}
	for i := range serialE {
		if math.Abs(serialE[i]-parE[i]) > 1e-6 {
			t.Fatalf("edge %d: serial %v != parallel %v", i, serialE[i], parE[i])
		}
	}
}

func TestSampledApproximatesExact(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 23)
	exact := EdgeBetweenness(g, Options{})
	// The sampled estimator should identify most of the exact top decile.
	// A single draw hovers around the threshold (any one seed can be
	// unlucky), so average the overlap across several sampling seeds.
	top := func(s []float64) map[int]struct{} {
		idx := make([]int, len(s))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return s[idx[a]] > s[idx[b]] })
		k := len(s) / 10
		set := make(map[int]struct{}, k)
		for _, i := range idx[:k] {
			set[i] = struct{}{}
		}
		return set
	}
	te := top(exact.Scores)
	var fracSum float64
	const draws = 5
	for seed := int64(1); seed <= draws; seed++ {
		sampled := EdgeBetweenness(g, Options{Samples: 150, Seed: seed})
		ts := top(sampled.Scores)
		inter := 0
		for i := range te {
			if _, ok := ts[i]; ok {
				inter++
			}
		}
		fracSum += float64(inter) / float64(len(te))
	}
	if frac := fracSum / draws; frac < 0.55 {
		t.Errorf("mean sampled top-10%% overlap with exact = %.2f, want >= 0.55", frac)
	}
}

func TestSamplesGEnIsExact(t *testing.T) {
	g := gen.Cycle(6)
	exact := NodeBetweenness(g, Options{})
	overSampled := NodeBetweenness(g, Options{Samples: 100, Seed: 1})
	for u := range exact {
		if !approx(exact[u], overSampled[u]) {
			t.Errorf("node %d: exact %v != oversampled %v", u, exact[u], overSampled[u])
		}
	}
}

func TestEdgeScoresOfPanicsOnForeignEdge(t *testing.T) {
	g := gen.Path(3)
	es := EdgeBetweenness(g, Options{})
	if got := es.Of(graph.Edge{U: 1, V: 0}); !approx(got, 2) {
		t.Errorf("Of reversed edge = %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Of(foreign edge) did not panic")
		}
	}()
	es.Of(graph.Edge{U: 0, V: 2})
}

// TestEdgeScoresOfMatchesMapIndex pins the CSR binary-search Of against the
// seed edge-keyed map it replaced: for every edge in both orientations, the
// looked-up score must be the exact Scores element the map would have
// returned — and out-of-range endpoints must panic rather than misindex.
func TestEdgeScoresOfMatchesMapIndex(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 23)
	es := EdgeBetweenness(g, Options{Workers: 1})
	idx := edgeIndex(g)
	for _, e := range g.Edges() {
		want := es.Scores[idx[e]]
		if got := es.Of(e); got != want {
			t.Fatalf("Of(%v) = %v, want %v", e, got, want)
		}
		rev := graph.Edge{U: e.V, V: e.U}
		if got := es.Of(rev); got != want {
			t.Fatalf("Of(%v) (reversed) = %v, want %v", rev, got, want)
		}
	}
	for _, bad := range []graph.Edge{{U: -1, V: 0}, {U: 0, V: 150}, {U: 3, V: 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Of(%v) did not panic", bad)
				}
			}()
			es.Of(bad)
		}()
	}
}

func TestBetweennessSingleNodeAndEmpty(t *testing.T) {
	var empty graph.Graph
	if got := NodeBetweenness(&empty, Options{}); len(got) != 0 {
		t.Errorf("empty graph scores = %v", got)
	}
	single := graph.MustFromEdges(1, nil)
	if got := NodeBetweenness(single, Options{}); len(got) != 1 || got[0] != 0 {
		t.Errorf("single node scores = %v", got)
	}
}

// TestPairDecomposition cross-checks Brandes against a brute-force count of
// shortest paths through each node on a random graph.
func TestPairDecomposition(t *testing.T) {
	g := gen.ErdosRenyi(40, 90, 3)
	got := NodeBetweenness(g, Options{})
	want := bruteForceNodeBetweenness(g)
	for u := range want {
		if math.Abs(got[u]-want[u]) > 1e-6 {
			t.Fatalf("node %d: brandes %v != brute force %v", u, got[u], want[u])
		}
	}
}

// bruteForceNodeBetweenness computes betweenness by explicit all-pairs path
// counting: sigma(s,t) and sigma(s,t|v) via BFS counts from every node.
func bruteForceNodeBetweenness(g *graph.Graph) []float64 {
	n := g.NumNodes()
	dist := make([][]int32, n)
	sigma := make([][]float64, n)
	for s := 0; s < n; s++ {
		dist[s], sigma[s] = bfsCounts(g, graph.NodeID(s))
	}
	bc := make([]float64, n)
	for s := 0; s < n; s++ {
		for tt := s + 1; tt < n; tt++ {
			if dist[s][tt] < 0 {
				continue
			}
			for v := 0; v < n; v++ {
				if v == s || v == tt {
					continue
				}
				// v lies on a shortest s-t path iff d(s,v)+d(v,t)=d(s,t).
				if dist[s][v] >= 0 && dist[tt][v] >= 0 && dist[s][v]+dist[tt][v] == dist[s][tt] {
					bc[v] += sigma[s][v] * sigma[tt][v] / sigma[s][tt]
				}
			}
		}
	}
	return bc
}

func bfsCounts(g *graph.Graph, s graph.NodeID) ([]int32, []float64) {
	n := g.NumNodes()
	dist := make([]int32, n)
	sigma := make([]float64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	sigma[s] = 1
	queue := []graph.NodeID{s}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
			if dist[w] == dist[v]+1 {
				sigma[w] += sigma[v]
			}
		}
	}
	return dist, sigma
}
