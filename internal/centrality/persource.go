package centrality

// The preserved per-source Brandes path: one BFS per source over the CSR
// view, flat predecessor bookkeeping, sharded accumulation. This was the
// production driver behind Betweenness/EdgeBetweenness until the batched
// MS-BFS engine (brandes_msbfs.go) took over, and it is kept — not as dead
// code — for three jobs:
//
//   - oracle: the per-source queue order is the seed algorithm's order, so
//     oracle_test.go pins it bit-exactly against the seed map-based oracle
//     and the MS-BFS path against it within float tolerance;
//   - benchmark baseline: the EdgeBetweennessPerSource/MSBFS and
//     CRRReduceExactPerSource/MSBFS speedup pairs (micro_bench_test.go,
//     internal/core) measure the batched engine against exactly this code;
//   - escape hatch: a scalar reference implementation with no per-(node,
//     bit) state, trivially auditable against Brandes (2001).

import (
	"time"

	"edgeshed/internal/graph"
	"edgeshed/internal/par"
)

// PerSourceEdgeBetweennessScores is the preserved pre-MS-BFS edge
// betweenness: identical source selection, sharding and scaling to
// EdgeBetweennessScores, but one serial Brandes pass per source. Production
// callers should use EdgeBetweennessScores; this entry exists so benchmarks
// and oracles outside this package (internal/core's end-to-end CRR pair)
// can measure and cross-check the batched engine against the seed path.
// Scores agree with EdgeBetweennessScores to float tolerance, not bit for
// bit — the two paths sum dependencies in different (both deterministic)
// orders.
func PerSourceEdgeBetweennessScores(g *graph.Graph, opt Options) []float64 {
	_, edges := both(g, opt, false, true)
	return edges
}

// predEntry is one recorded shortest-path predecessor: the predecessor node
// and the canonical id of the connecting edge, captured at discovery time so
// the accumulation loop needs no further indirection through the CSR.
type predEntry struct {
	node graph.NodeID
	edge int32
}

// brandesState is the per-worker scratch space for one BFS + accumulation
// pass, reused across sources to avoid re-allocation. All predecessor
// bookkeeping lives in one flat CSR-bounded array: node w's predecessors
// occupy preds[c.Offsets[w]] .. preds[c.Offsets[w]+predCnt[w]-1], which can
// never overflow because a node has at most Degree(w) predecessors.
type brandesState struct {
	queue   []graph.NodeID // BFS queue doubling as the visit order stack
	dist    []int32
	sigma   []float64   // shortest path counts
	delta   []float64   // dependency accumulation
	preds   []predEntry // flat predecessor storage, one entry per CSR slot (2|E|)
	predCnt []int32     // predecessors recorded per node this pass
}

func newBrandesState(c *graph.CSR) *brandesState {
	n := c.NumNodes()
	return &brandesState{
		queue:   make([]graph.NodeID, 0, n),
		dist:    make([]int32, n),
		sigma:   make([]float64, n),
		delta:   make([]float64, n),
		preds:   make([]predEntry, c.NumSlots()),
		predCnt: make([]int32, n),
	}
}

// run performs one Brandes pass from source s, adding node dependencies into
// nodeAcc (if non-nil) and edge dependencies into edgeAcc (if non-nil,
// indexed by canonical edge id, i.e. aligned with g.Edges()).
func (st *brandesState) run(c *graph.CSR, s graph.NodeID, nodeAcc, edgeAcc []float64) {
	st.queue = st.queue[:0]
	// Reset only what the previous pass touched would be ideal; for
	// simplicity and cache-friendliness we clear the dense arrays. dist = -1
	// doubles as "unvisited". preds needs no clearing: predCnt gates every
	// read.
	for i := range st.dist {
		st.dist[i] = -1
		st.sigma[i] = 0
		st.delta[i] = 0
		st.predCnt[i] = 0
	}
	offsets, targets, edgeID := c.Offsets, c.Targets, c.EdgeID
	dist, sigma, delta := st.dist, st.sigma, st.delta
	preds, predCnt := st.preds, st.predCnt
	queue := st.queue
	dist[s] = 0
	sigma[s] = 1
	queue = append(queue, s)
	if edgeAcc != nil {
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			dw := dist[v] + 1 // distance of any node first reached from v
			sv := sigma[v]
			lo, hi := offsets[v], offsets[v+1]
			for k, w := range targets[lo:hi] {
				switch {
				case dist[w] < 0: // first visit
					dist[w] = dw
					sigma[w] = sv
					preds[offsets[w]] = predEntry{node: v, edge: edgeID[lo+int32(k)]}
					predCnt[w] = 1
					queue = append(queue, w)
				case dist[w] == dw: // another shortest path
					sigma[w] += sv
					preds[offsets[w]+predCnt[w]] = predEntry{node: v, edge: edgeID[lo+int32(k)]}
					predCnt[w]++
				}
			}
		}
	} else {
		// Node-only variant: identical except it skips the edge-id loads.
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			dw := dist[v] + 1
			sv := sigma[v]
			lo, hi := offsets[v], offsets[v+1]
			for _, w := range targets[lo:hi] {
				switch {
				case dist[w] < 0:
					dist[w] = dw
					sigma[w] = sv
					preds[offsets[w]] = predEntry{node: v}
					predCnt[w] = 1
					queue = append(queue, w)
				case dist[w] == dw:
					sigma[w] += sv
					preds[offsets[w]+predCnt[w]] = predEntry{node: v}
					predCnt[w]++
				}
			}
		}
	}
	st.queue = queue
	// Accumulate dependencies in reverse BFS order. The edge-accumulating
	// and node-only loops are split so the innermost loop carries no nil
	// check and, in both cases, no map lookup or Canonical() call — each
	// predecessor visit is two array reads and two indexed accumulations.
	for i := len(queue) - 1; i >= 0; i-- {
		w := queue[i]
		coeff := (1 + delta[w]) / sigma[w]
		base := offsets[w]
		ps := preds[base : base+predCnt[w]]
		if edgeAcc != nil {
			for _, p := range ps {
				cc := sigma[p.node] * coeff
				delta[p.node] += cc
				edgeAcc[p.edge] += cc
			}
		} else {
			for _, p := range ps {
				delta[p.node] += sigma[p.node] * coeff
			}
		}
		if w != s && nodeAcc != nil {
			nodeAcc[w] += delta[w]
		}
	}
}

// both runs the sampled/exact parallel per-source Brandes driver.
// Per-source dependencies are floating point, so to keep the scores
// bit-identical at any worker count the accumulation is sharded, not
// per-worker: source srcs[i] always accumulates into shard i mod
// par.Shards, worker w processes shards w, w+workers, … with one reusable
// traversal state, and the per-shard partial sums merge in shard index
// order. The summation tree is then a function of (graph, Options) alone —
// the worker count only changes which goroutine happens to own a shard.
// (Options.Batch does not apply here: every source runs its own BFS.)
func both(g *graph.Graph, opt Options, wantNodes, wantEdges bool) ([]float64, []float64) {
	n := g.NumNodes()
	var nodes, edges []float64
	if wantNodes {
		nodes = make([]float64, n)
	}
	if wantEdges {
		edges = make([]float64, g.NumEdges())
	}
	if n == 0 {
		// Defensive: nothing to traverse regardless of Samples/Workers.
		return nodes, edges
	}
	srcs, scale := opt.sources(n)
	if len(srcs) == 0 {
		return nodes, edges
	}
	c := g.CSR()
	shards := par.Shards
	if shards > len(srcs) {
		shards = len(srcs)
	}
	workers := par.Workers(opt.Workers, shards)
	sp := opt.Obs.Start("betweenness")
	defer sp.End()
	sp.SetTotal(int64(len(srcs)))
	srcCtr := sp.Counter("betweenness.sources_done")
	type partial struct {
		nodes, edges []float64
	}
	parts := make([]partial, shards)
	par.Run(workers, func(w int) {
		var t0 time.Time
		if sp.Enabled() {
			t0 = time.Now()
		}
		var done int64
		st := newBrandesState(c)
		for s := w; s < shards; s += workers {
			var nodeAcc, edgeAcc []float64
			if wantNodes {
				nodeAcc = make([]float64, n)
			}
			if wantEdges {
				edgeAcc = make([]float64, g.NumEdges())
			}
			for i := s; i < len(srcs); i += shards {
				st.run(c, srcs[i], nodeAcc, edgeAcc)
				done++
				sp.Done(1)
			}
			parts[s] = partial{nodes: nodeAcc, edges: edgeAcc}
		}
		if sp.Enabled() {
			srcCtr.AddAt(w, done)
			sp.WorkerBusy(w, time.Since(t0))
		}
	})

	if wantNodes {
		for _, p := range parts {
			for i, v := range p.nodes {
				nodes[i] += v
			}
		}
		// Each unordered pair is seen from both endpoints in an exact run:
		// halve. Sampled runs estimate the same quantity via scale/2.
		for i := range nodes {
			nodes[i] *= scale / 2
		}
	}
	if wantEdges {
		for _, p := range parts {
			for i, v := range p.edges {
				edges[i] += v
			}
		}
		for i := range edges {
			edges[i] *= scale / 2
		}
	}
	return nodes, edges
}
