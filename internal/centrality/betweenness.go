// Package centrality computes betweenness centrality for nodes and edges of
// unweighted undirected graphs using Brandes' algorithm (Brandes 2001,
// paper reference [24]): O(|V|+|E|) space and O(|V||E|) time exact, or
// O(s|E|) with s sampled sources for the large graphs where exact
// computation violates the paper's resource constraints.
//
// The implementation runs on the graph's CSR view (graph.CSR): the BFS walks
// flat adjacency slots, predecessors are recorded as slot indices in a flat
// CSR-bounded array, and edge dependencies accumulate into an array indexed
// by the slot's canonical edge id — no map lookups and no Edge.Canonical()
// calls anywhere on the per-visit path.
//
// Betweenness is the backbone of CRR Phase 1 (edge ranking) and of the UDS
// comparator's node/edge importance scores.
package centrality

import (
	"fmt"
	"sync"
	"time"

	"edgeshed/internal/graph"
	"edgeshed/internal/obs"
	"edgeshed/internal/par"
)

// Options configures a betweenness computation.
type Options struct {
	// Samples is the number of BFS source nodes. 0 (or >= |V|) means exact:
	// every node is a source. A negative value is treated as 0, i.e. exact —
	// callers wanting validation should check before constructing Options.
	// With sampling, scores are scaled by |V|/Samples so they estimate the
	// exact values.
	Samples int
	// Workers is the parallelism across sources. 0 means GOMAXPROCS; a
	// negative value is likewise treated as GOMAXPROCS. Sources accumulate
	// into par.Shards fixed shards (source i into shard i mod par.Shards)
	// that merge in shard order, so the scores are bit-identical at ANY
	// worker count, not just deterministic per count. Parallelism is
	// therefore capped at par.Shards workers.
	Workers int
	// Seed drives source sampling; ignored when exact.
	Seed int64
	// Batch is the MS-BFS batch width for the kernels on the bit-parallel
	// engine (Closeness, NodeBetweenness): how many sources share one
	// traversal, one bit each. 0 or any out-of-range value selects the full
	// 64-bit word. The width changes wall-clock time and scratch memory
	// only (batched Brandes holds 16·Batch bytes of sigma/delta state per
	// node per worker) — outputs are bit-identical at any width.
	Batch int
	// Obs is the parent observability span; nil (the zero value) records
	// nothing at no cost. When set, the kernel reports a "betweenness" span
	// with per-worker busy time and a "betweenness.sources_done" counter.
	// Instrumentation never alters the scores: they stay bit-identical with
	// Obs on or off, at any worker count.
	Obs *obs.Span
}

// samples resolves the sample count; negative means 0 (exact).
func (o Options) samples() int {
	if o.Samples < 0 {
		return 0
	}
	return o.Samples
}

// sources returns the BFS sources and the per-source scale factor.
// Sampling uses graph.SampleNodeIDs, the shared partial Fisher–Yates draw:
// O(Samples) time and memory, deterministic for a given Seed.
func (o Options) sources(n int) ([]graph.NodeID, float64) {
	s := o.samples()
	if s <= 0 || s >= n {
		return graph.SampleNodeIDs(n, n, 0), 1
	}
	return graph.SampleNodeIDs(n, s, o.Seed), float64(n) / float64(s)
}

// EdgeScores holds per-edge betweenness aligned with g.Edges().
//
// Scores is the primary representation: Scores[i] belongs to g.Edges()[i],
// and every consumer in this repository indexes it directly. The
// edge-keyed lookup map behind Of is built lazily on the first Of call, so
// callers that only read Scores never pay for it.
type EdgeScores struct {
	g      *graph.Graph
	Scores []float64 // Scores[i] is the betweenness of g.Edges()[i]

	indexOnce sync.Once
	index     map[graph.Edge]int32
}

// Of returns the score of edge e (any orientation). It panics if e is not an
// edge of the underlying graph. The first call builds an edge-keyed index in
// O(|E|); prefer indexing Scores directly when the edge id is known.
func (s *EdgeScores) Of(e graph.Edge) float64 {
	s.indexOnce.Do(func() { s.index = edgeIndex(s.g) })
	i, ok := s.index[e.Canonical()]
	if !ok {
		panic(fmt.Sprintf("centrality: edge %v not in graph", e))
	}
	return s.Scores[i]
}

// Edge returns the i-th edge, aligned with Scores[i].
func (s *EdgeScores) Edge(i int) graph.Edge { return s.g.Edges()[i] }

// Len returns the number of scored edges.
func (s *EdgeScores) Len() int { return len(s.Scores) }

// edgeIndex builds the canonical-edge -> edge-list-position map.
func edgeIndex(g *graph.Graph) map[graph.Edge]int32 {
	idx := make(map[graph.Edge]int32, g.NumEdges())
	for i, e := range g.Edges() {
		idx[e] = int32(i)
	}
	return idx
}

// predEntry is one recorded shortest-path predecessor: the predecessor node
// and the canonical id of the connecting edge, captured at discovery time so
// the accumulation loop needs no further indirection through the CSR.
type predEntry struct {
	node graph.NodeID
	edge int32
}

// brandesState is the per-worker scratch space for one BFS + accumulation
// pass, reused across sources to avoid re-allocation. All predecessor
// bookkeeping lives in one flat CSR-bounded array: node w's predecessors
// occupy preds[c.Offsets[w]] .. preds[c.Offsets[w]+predCnt[w]-1], which can
// never overflow because a node has at most Degree(w) predecessors.
type brandesState struct {
	queue   []graph.NodeID // BFS queue doubling as the visit order stack
	dist    []int32
	sigma   []float64   // shortest path counts
	delta   []float64   // dependency accumulation
	preds   []predEntry // flat predecessor storage, one entry per CSR slot (2|E|)
	predCnt []int32     // predecessors recorded per node this pass
}

func newBrandesState(c *graph.CSR) *brandesState {
	n := c.NumNodes()
	return &brandesState{
		queue:   make([]graph.NodeID, 0, n),
		dist:    make([]int32, n),
		sigma:   make([]float64, n),
		delta:   make([]float64, n),
		preds:   make([]predEntry, c.NumSlots()),
		predCnt: make([]int32, n),
	}
}

// run performs one Brandes pass from source s, adding node dependencies into
// nodeAcc (if non-nil) and edge dependencies into edgeAcc (if non-nil,
// indexed by canonical edge id, i.e. aligned with g.Edges()).
func (st *brandesState) run(c *graph.CSR, s graph.NodeID, nodeAcc, edgeAcc []float64) {
	st.queue = st.queue[:0]
	// Reset only what the previous pass touched would be ideal; for
	// simplicity and cache-friendliness we clear the dense arrays. dist = -1
	// doubles as "unvisited". preds needs no clearing: predCnt gates every
	// read.
	for i := range st.dist {
		st.dist[i] = -1
		st.sigma[i] = 0
		st.delta[i] = 0
		st.predCnt[i] = 0
	}
	offsets, targets, edgeID := c.Offsets, c.Targets, c.EdgeID
	dist, sigma, delta := st.dist, st.sigma, st.delta
	preds, predCnt := st.preds, st.predCnt
	queue := st.queue
	dist[s] = 0
	sigma[s] = 1
	queue = append(queue, s)
	if edgeAcc != nil {
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			dw := dist[v] + 1 // distance of any node first reached from v
			sv := sigma[v]
			lo, hi := offsets[v], offsets[v+1]
			for k, w := range targets[lo:hi] {
				switch {
				case dist[w] < 0: // first visit
					dist[w] = dw
					sigma[w] = sv
					preds[offsets[w]] = predEntry{node: v, edge: edgeID[lo+int32(k)]}
					predCnt[w] = 1
					queue = append(queue, w)
				case dist[w] == dw: // another shortest path
					sigma[w] += sv
					preds[offsets[w]+predCnt[w]] = predEntry{node: v, edge: edgeID[lo+int32(k)]}
					predCnt[w]++
				}
			}
		}
	} else {
		// Node-only variant: identical except it skips the edge-id loads.
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			dw := dist[v] + 1
			sv := sigma[v]
			lo, hi := offsets[v], offsets[v+1]
			for _, w := range targets[lo:hi] {
				switch {
				case dist[w] < 0:
					dist[w] = dw
					sigma[w] = sv
					preds[offsets[w]] = predEntry{node: v}
					predCnt[w] = 1
					queue = append(queue, w)
				case dist[w] == dw:
					sigma[w] += sv
					preds[offsets[w]+predCnt[w]] = predEntry{node: v}
					predCnt[w]++
				}
			}
		}
	}
	st.queue = queue
	// Accumulate dependencies in reverse BFS order. The edge-accumulating
	// and node-only loops are split so the innermost loop carries no nil
	// check and, in both cases, no map lookup or Canonical() call — each
	// predecessor visit is two array reads and two indexed accumulations.
	for i := len(queue) - 1; i >= 0; i-- {
		w := queue[i]
		coeff := (1 + delta[w]) / sigma[w]
		base := offsets[w]
		ps := preds[base : base+predCnt[w]]
		if edgeAcc != nil {
			for _, p := range ps {
				cc := sigma[p.node] * coeff
				delta[p.node] += cc
				edgeAcc[p.edge] += cc
			}
		} else {
			for _, p := range ps {
				delta[p.node] += sigma[p.node] * coeff
			}
		}
		if w != s && nodeAcc != nil {
			nodeAcc[w] += delta[w]
		}
	}
}

// NodeBetweenness returns per-node betweenness centrality (unnormalized,
// with each unordered pair contributing once, as is conventional for
// undirected graphs). It runs on the bit-parallel MS-BFS engine — up to 64
// sources per traversal (Options.Batch), folded through the fixed-shard
// discipline in a canonical per-level order — so the scores are
// bit-identical at any Workers count and any Batch width, and bit-exactly
// pinned by the canonical serial oracle in oracle_test.go. The canonical
// summation order differs from the per-source queue order both() uses, so
// these scores match the node half of Betweenness only to float tolerance,
// not bit for bit.
func NodeBetweenness(g *graph.Graph, opt Options) []float64 {
	return nodeBetweennessMSBFS(g, opt)
}

// EdgeBetweennessScores returns per-edge betweenness centrality as a flat
// slice aligned with g.Edges(): the score of g.Edges()[i] is element i. This
// is the cheapest edge-betweenness entry point — no wrapper, no edge-keyed
// map.
func EdgeBetweennessScores(g *graph.Graph, opt Options) []float64 {
	_, edges := both(g, opt, false, true)
	return edges
}

// EdgeBetweenness returns per-edge betweenness centrality wrapped in an
// EdgeScores, whose Of lookup map is built lazily on first use. Callers that
// work with edge ids should prefer EdgeBetweennessScores.
func EdgeBetweenness(g *graph.Graph, opt Options) *EdgeScores {
	return &EdgeScores{g: g, Scores: EdgeBetweennessScores(g, opt)}
}

// Betweenness computes node and edge betweenness in a single pass over
// sources, cheaper than computing them separately. The edge slice is aligned
// with g.Edges().
func Betweenness(g *graph.Graph, opt Options) ([]float64, []float64) {
	return both(g, opt, true, true)
}

// both runs the sampled/exact parallel Brandes driver. Per-source
// dependencies are floating point, so to keep the scores bit-identical at
// any worker count the accumulation is sharded, not per-worker: source
// srcs[i] always accumulates into shard i mod par.Shards, worker w
// processes shards w, w+workers, … with one reusable traversal state, and
// the per-shard partial sums merge in shard index order. The summation tree
// is then a function of (graph, Options) alone — the worker count only
// changes which goroutine happens to own a shard.
func both(g *graph.Graph, opt Options, wantNodes, wantEdges bool) ([]float64, []float64) {
	n := g.NumNodes()
	var nodes, edges []float64
	if wantNodes {
		nodes = make([]float64, n)
	}
	if wantEdges {
		edges = make([]float64, g.NumEdges())
	}
	if n == 0 {
		// Defensive: nothing to traverse regardless of Samples/Workers.
		return nodes, edges
	}
	srcs, scale := opt.sources(n)
	if len(srcs) == 0 {
		return nodes, edges
	}
	c := g.CSR()
	shards := par.Shards
	if shards > len(srcs) {
		shards = len(srcs)
	}
	workers := par.Workers(opt.Workers, shards)
	sp := opt.Obs.Start("betweenness")
	defer sp.End()
	sp.SetTotal(int64(len(srcs)))
	srcCtr := sp.Counter("betweenness.sources_done")
	type partial struct {
		nodes, edges []float64
	}
	parts := make([]partial, shards)
	par.Run(workers, func(w int) {
		var t0 time.Time
		if sp.Enabled() {
			t0 = time.Now()
		}
		var done int64
		st := newBrandesState(c)
		for s := w; s < shards; s += workers {
			var nodeAcc, edgeAcc []float64
			if wantNodes {
				nodeAcc = make([]float64, n)
			}
			if wantEdges {
				edgeAcc = make([]float64, g.NumEdges())
			}
			for i := s; i < len(srcs); i += shards {
				st.run(c, srcs[i], nodeAcc, edgeAcc)
				done++
				sp.Done(1)
			}
			parts[s] = partial{nodes: nodeAcc, edges: edgeAcc}
		}
		if sp.Enabled() {
			srcCtr.AddAt(w, done)
			sp.WorkerBusy(w, time.Since(t0))
		}
	})

	if wantNodes {
		for _, p := range parts {
			for i, v := range p.nodes {
				nodes[i] += v
			}
		}
		// Each unordered pair is seen from both endpoints in an exact run:
		// halve. Sampled runs estimate the same quantity via scale/2.
		for i := range nodes {
			nodes[i] *= scale / 2
		}
	}
	if wantEdges {
		for _, p := range parts {
			for i, v := range p.edges {
				edges[i] += v
			}
		}
		for i := range edges {
			edges[i] *= scale / 2
		}
	}
	return nodes, edges
}
