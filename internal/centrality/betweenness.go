// Package centrality computes betweenness centrality for nodes and edges of
// unweighted undirected graphs using Brandes' algorithm (Brandes 2001,
// paper reference [24]): O(|V|+|E|) space and O(|V||E|) time exact, or
// O(s|E|) with s sampled sources for the large graphs where exact
// computation violates the paper's resource constraints.
//
// Every public entry point runs on the bit-parallel MS-BFS engine
// (internal/msbfs): one traversal carries up to Options.Batch sources, the
// sigma/delta phases walk the discovered levels with one float64 per
// (node, batch bit) pair, and node and edge dependencies fold through the
// fixed-shard discipline in a canonical order — so the scores are
// bit-identical at any Workers count and any Batch width. The seed
// per-source path is preserved in persource.go as the oracle and benchmark
// baseline.
//
// Betweenness is the backbone of CRR Phase 1 (edge ranking) and of the UDS
// comparator's node/edge importance scores.
package centrality

import (
	"fmt"

	"edgeshed/internal/graph"
	"edgeshed/internal/obs"
)

// Options configures a betweenness computation.
type Options struct {
	// Samples is the number of BFS source nodes. 0 (or >= |V|) means exact:
	// every node is a source. A negative value is treated as 0, i.e. exact —
	// callers wanting validation should check before constructing Options.
	// With sampling, scores are scaled by |V|/Samples so they estimate the
	// exact values.
	Samples int
	// Workers is the parallelism across sources. 0 means GOMAXPROCS; a
	// negative value is likewise treated as GOMAXPROCS. Sources accumulate
	// into par.Shards fixed shards (source i into shard i mod par.Shards)
	// that merge in shard order, so the scores are bit-identical at ANY
	// worker count, not just deterministic per count. Parallelism is
	// therefore capped at par.Shards workers.
	Workers int
	// Seed drives source sampling; ignored when exact.
	Seed int64
	// Batch is the MS-BFS batch width: how many sources share one
	// traversal, one bit each. 0, negative, or >64 — anything outside
	// [1, 64] — selects the full 64-bit word, mirroring how Samples and
	// Workers absorb out-of-range values (msbfs.Width is the single
	// clamping point). The width changes wall-clock time and scratch memory
	// only (batched Brandes holds 16·Batch bytes of sigma/delta state per
	// node per worker) — node AND edge scores are bit-identical at any
	// width.
	Batch int
	// Obs is the parent observability span; nil (the zero value) records
	// nothing at no cost. When set, the kernel reports a "betweenness" span
	// with per-worker busy time, a "betweenness.sources_done" counter, the
	// engine's "msbfs.*" traversal counters and — on the edge path — a
	// "brandes.edge_folds" counter of dependency terms folded into edge
	// scores. Instrumentation never alters the scores: they stay
	// bit-identical with Obs on or off, at any worker count.
	Obs *obs.Span
}

// samples resolves the sample count; negative means 0 (exact).
func (o Options) samples() int {
	if o.Samples < 0 {
		return 0
	}
	return o.Samples
}

// sources returns the BFS sources and the per-source scale factor.
// Sampling uses graph.SampleNodeIDs, the shared partial Fisher–Yates draw:
// O(Samples) time and memory, deterministic for a given Seed.
func (o Options) sources(n int) ([]graph.NodeID, float64) {
	s := o.samples()
	if s <= 0 || s >= n {
		return graph.SampleNodeIDs(n, n, 0), 1
	}
	return graph.SampleNodeIDs(n, s, o.Seed), float64(n) / float64(s)
}

// EdgeScores holds per-edge betweenness aligned with g.Edges().
//
// Scores is the primary representation: Scores[i] belongs to g.Edges()[i],
// and every consumer in this repository indexes it directly. Of resolves an
// edge through the CSR's binary-search EdgeIDOf — O(log deg) on flat
// arrays, no lazily built map, no allocation.
type EdgeScores struct {
	g      *graph.Graph
	Scores []float64 // Scores[i] is the betweenness of g.Edges()[i]
}

// Of returns the score of edge e (any orientation). It panics if e is not
// an edge of the underlying graph. Each call is one O(log deg)
// binary search over the CSR's slot arrays; prefer indexing Scores
// directly when the edge id is known.
func (s *EdgeScores) Of(e graph.Edge) float64 {
	i := s.g.CSR().EdgeIDOf(e.U, e.V)
	if i < 0 {
		panic(fmt.Sprintf("centrality: edge %v not in graph", e))
	}
	return s.Scores[i]
}

// Edge returns the i-th edge, aligned with Scores[i].
func (s *EdgeScores) Edge(i int) graph.Edge { return s.g.Edges()[i] }

// Len returns the number of scored edges.
func (s *EdgeScores) Len() int { return len(s.Scores) }

// NodeBetweenness returns per-node betweenness centrality (unnormalized,
// with each unordered pair contributing once, as is conventional for
// undirected graphs). It runs on the bit-parallel MS-BFS engine — up to 64
// sources per traversal (Options.Batch), folded through the fixed-shard
// discipline in a canonical per-level order — so the scores are
// bit-identical at any Workers count and any Batch width, and bit-exactly
// pinned by the canonical serial oracle in msbfs_oracle_test.go. The
// canonical summation order differs from the per-source queue order the
// preserved persource.go path uses, so these scores match that path only
// to float tolerance, not bit for bit.
func NodeBetweenness(g *graph.Graph, opt Options) []float64 {
	nodes, _ := msbfsBetweenness(g, opt, true, false)
	return nodes
}

// EdgeBetweennessScores returns per-edge betweenness centrality as a flat
// slice aligned with g.Edges(): the score of g.Edges()[i] is element i.
// This is the cheapest edge-betweenness entry point — no wrapper, no
// edge-keyed map — and the scorer behind CRR Phase 1. Like
// NodeBetweenness it runs on the batched MS-BFS engine: scores are
// bit-identical at any Workers × Batch combination, pinned by the
// canonical serial edge oracle in msbfs_oracle_test.go.
func EdgeBetweennessScores(g *graph.Graph, opt Options) []float64 {
	_, edges := msbfsBetweenness(g, opt, false, true)
	return edges
}

// EdgeBetweenness returns per-edge betweenness centrality wrapped in an
// EdgeScores whose Of answers lookups via the CSR's binary search. Callers
// that work with edge ids should prefer EdgeBetweennessScores.
func EdgeBetweenness(g *graph.Graph, opt Options) *EdgeScores {
	return &EdgeScores{g: g, Scores: EdgeBetweennessScores(g, opt)}
}

// Betweenness computes node and edge betweenness in a single pass over
// sources — one traversal, one backward sweep and one fold feed both
// accumulators — cheaper than computing them separately. The edge slice is
// aligned with g.Edges(). Both halves carry the engine's bit-determinism
// guarantee at any Workers × Batch.
func Betweenness(g *graph.Graph, opt Options) ([]float64, []float64) {
	return msbfsBetweenness(g, opt, true, true)
}
