// Package centrality computes betweenness centrality for nodes and edges of
// unweighted undirected graphs using Brandes' algorithm (Brandes 2001,
// paper reference [24]): O(|V|+|E|) space and O(|V||E|) time exact, or
// O(s|E|) with s sampled sources for the large graphs where exact
// computation violates the paper's resource constraints.
//
// Betweenness is the backbone of CRR Phase 1 (edge ranking) and of the UDS
// comparator's node/edge importance scores.
package centrality

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"edgeshed/internal/graph"
)

// Options configures a betweenness computation.
type Options struct {
	// Samples is the number of BFS source nodes. 0 (or >= |V|) means exact:
	// every node is a source. With sampling, scores are scaled by
	// |V|/Samples so they estimate the exact values.
	Samples int
	// Workers is the parallelism across sources. 0 means GOMAXPROCS.
	Workers int
	// Seed drives source sampling; ignored when exact.
	Seed int64
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// sources returns the BFS sources and the per-source scale factor.
func (o Options) sources(n int) ([]graph.NodeID, float64) {
	if o.Samples <= 0 || o.Samples >= n {
		all := make([]graph.NodeID, n)
		for i := range all {
			all[i] = graph.NodeID(i)
		}
		return all, 1
	}
	rng := rand.New(rand.NewSource(o.Seed))
	perm := rng.Perm(n)[:o.Samples]
	srcs := make([]graph.NodeID, o.Samples)
	for i, p := range perm {
		srcs[i] = graph.NodeID(p)
	}
	return srcs, float64(n) / float64(o.Samples)
}

// EdgeScores holds per-edge betweenness aligned with g.Edges().
type EdgeScores struct {
	g      *graph.Graph
	Scores []float64 // Scores[i] is the betweenness of g.Edges()[i]
	index  map[graph.Edge]int32
}

// Of returns the score of edge e (any orientation). It panics if e is not an
// edge of the underlying graph.
func (s *EdgeScores) Of(e graph.Edge) float64 {
	i, ok := s.index[e.Canonical()]
	if !ok {
		panic(fmt.Sprintf("centrality: edge %v not in graph", e))
	}
	return s.Scores[i]
}

// Edge returns the i-th edge, aligned with Scores[i].
func (s *EdgeScores) Edge(i int) graph.Edge { return s.g.Edges()[i] }

// Len returns the number of scored edges.
func (s *EdgeScores) Len() int { return len(s.Scores) }

// edgeIndex builds the canonical-edge -> edge-list-position map.
func edgeIndex(g *graph.Graph) map[graph.Edge]int32 {
	idx := make(map[graph.Edge]int32, g.NumEdges())
	for i, e := range g.Edges() {
		idx[e] = int32(i)
	}
	return idx
}

// brandesState is the per-worker scratch space for one BFS + accumulation
// pass, reused across sources to avoid re-allocation.
type brandesState struct {
	queue []graph.NodeID // BFS queue doubling as the visit order stack
	dist  []int32
	sigma []float64 // shortest path counts
	delta []float64 // dependency accumulation
	preds [][]graph.NodeID
}

func newBrandesState(n int) *brandesState {
	return &brandesState{
		queue: make([]graph.NodeID, 0, n),
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		preds: make([][]graph.NodeID, n),
	}
}

// run performs one Brandes pass from source s, adding node dependencies into
// nodeAcc (if non-nil) and edge dependencies into edgeAcc (if non-nil,
// indexed by eIdx).
func (st *brandesState) run(g *graph.Graph, s graph.NodeID, nodeAcc, edgeAcc []float64, eIdx map[graph.Edge]int32) {
	st.queue = st.queue[:0]
	// Reset only what the previous pass touched would be ideal; for
	// simplicity and cache-friendliness we clear the dense arrays. dist = -1
	// doubles as "unvisited".
	for i := range st.dist {
		st.dist[i] = -1
		st.sigma[i] = 0
		st.delta[i] = 0
		st.preds[i] = st.preds[i][:0]
	}
	st.dist[s] = 0
	st.sigma[s] = 1
	st.queue = append(st.queue, s)
	for head := 0; head < len(st.queue); head++ {
		v := st.queue[head]
		dv := st.dist[v]
		for _, w := range g.Neighbors(v) {
			switch {
			case st.dist[w] < 0: // first visit
				st.dist[w] = dv + 1
				st.sigma[w] = st.sigma[v]
				st.preds[w] = append(st.preds[w], v)
				st.queue = append(st.queue, w)
			case st.dist[w] == dv+1: // another shortest path
				st.sigma[w] += st.sigma[v]
				st.preds[w] = append(st.preds[w], v)
			}
		}
	}
	// Accumulate dependencies in reverse BFS order.
	for i := len(st.queue) - 1; i >= 0; i-- {
		w := st.queue[i]
		coeff := (1 + st.delta[w]) / st.sigma[w]
		for _, v := range st.preds[w] {
			c := st.sigma[v] * coeff
			st.delta[v] += c
			if edgeAcc != nil {
				edgeAcc[eIdx[graph.Edge{U: v, V: w}.Canonical()]] += c
			}
		}
		if w != s && nodeAcc != nil {
			nodeAcc[w] += st.delta[w]
		}
	}
}

// NodeBetweenness returns per-node betweenness centrality (unnormalized,
// with each unordered pair contributing once, as is conventional for
// undirected graphs).
func NodeBetweenness(g *graph.Graph, opt Options) []float64 {
	nodes, _ := both(g, opt, true, false)
	return nodes
}

// EdgeBetweenness returns per-edge betweenness centrality aligned with
// g.Edges(). With each unordered (s, t) pair contributing once.
func EdgeBetweenness(g *graph.Graph, opt Options) *EdgeScores {
	_, edges := both(g, opt, false, true)
	return edges
}

// Betweenness computes node and edge betweenness in a single pass over
// sources, cheaper than calling NodeBetweenness and EdgeBetweenness
// separately.
func Betweenness(g *graph.Graph, opt Options) ([]float64, *EdgeScores) {
	return both(g, opt, true, true)
}

func both(g *graph.Graph, opt Options, wantNodes, wantEdges bool) ([]float64, *EdgeScores) {
	n := g.NumNodes()
	srcs, scale := opt.sources(n)
	var eIdx map[graph.Edge]int32
	if wantEdges {
		eIdx = edgeIndex(g)
	}
	workers := opt.workers()
	if workers > len(srcs) {
		workers = len(srcs)
	}
	if workers < 1 {
		workers = 1
	}
	type partial struct {
		nodes, edges []float64
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	next := make(chan graph.NodeID, len(srcs))
	for _, s := range srcs {
		next <- s
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := newBrandesState(n)
			var nodeAcc, edgeAcc []float64
			if wantNodes {
				nodeAcc = make([]float64, n)
			}
			if wantEdges {
				edgeAcc = make([]float64, g.NumEdges())
			}
			for s := range next {
				st.run(g, s, nodeAcc, edgeAcc, eIdx)
			}
			parts[w] = partial{nodes: nodeAcc, edges: edgeAcc}
		}(w)
	}
	wg.Wait()

	var nodes []float64
	if wantNodes {
		nodes = make([]float64, n)
		for _, p := range parts {
			for i, v := range p.nodes {
				nodes[i] += v
			}
		}
		// Each unordered pair is seen from both endpoints in an exact run:
		// halve. Sampled runs estimate the same quantity via scale/2.
		for i := range nodes {
			nodes[i] *= scale / 2
		}
	}
	var edges *EdgeScores
	if wantEdges {
		acc := make([]float64, g.NumEdges())
		for _, p := range parts {
			for i, v := range p.edges {
				acc[i] += v
			}
		}
		for i := range acc {
			acc[i] *= scale / 2
		}
		edges = &EdgeScores{g: g, Scores: acc, index: eIdx}
	}
	return nodes, edges
}
