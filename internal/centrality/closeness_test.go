package centrality

import (
	"math"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func TestClosenessStar(t *testing.T) {
	g := gen.Star(5) // hub 0: distance 1 to all; leaves: 1 + 3×2 = 7
	got := Closeness(g, Options{})
	if !approx(got[0], 1) {
		t.Errorf("hub closeness = %v, want 1", got[0])
	}
	want := 4.0 / 7.0
	for u := 1; u < 5; u++ {
		if !approx(got[u], want) {
			t.Errorf("leaf %d closeness = %v, want %v", u, got[u], want)
		}
	}
}

func TestClosenessPath(t *testing.T) {
	g := gen.Path(5)
	got := Closeness(g, Options{})
	// Center node 2: distances 2+1+1+2 = 6 → 4/6.
	if !approx(got[2], 4.0/6.0) {
		t.Errorf("center closeness = %v, want %v", got[2], 4.0/6.0)
	}
	// End node 0: 1+2+3+4 = 10 → 0.4.
	if !approx(got[0], 0.4) {
		t.Errorf("end closeness = %v, want 0.4", got[0])
	}
	if got[0] >= got[1] || got[1] >= got[2] {
		t.Error("closeness not increasing toward the center of a path")
	}
}

func TestClosenessDisconnected(t *testing.T) {
	// Wasserman–Faust scales by component reach: the pair component scores
	// (1/5)·(1/1) = 0.2; the isolated node scores 0.
	g := graph.MustFromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 3, V: 4}})
	got := Closeness(g, Options{})
	if !approx(got[0], 0.2) {
		t.Errorf("pair closeness = %v, want 0.2", got[0])
	}
	if got[5] != 0 {
		t.Errorf("isolated closeness = %v, want 0", got[5])
	}
	// Middle of the triple beats its ends.
	if got[3] <= got[2] {
		t.Errorf("path middle %v not above end %v", got[3], got[2])
	}
}

func TestClosenessParallelMatchesSerial(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 5)
	a := Closeness(g, Options{Workers: 1})
	b := Closeness(g, Options{Workers: 8})
	for u := range a {
		if math.Abs(a[u]-b[u]) > 1e-12 {
			t.Fatalf("node %d: serial %v != parallel %v", u, a[u], b[u])
		}
	}
}

func TestClosenessTrivial(t *testing.T) {
	var empty graph.Graph
	if got := Closeness(&empty, Options{}); len(got) != 0 {
		t.Errorf("empty closeness = %v", got)
	}
	single := graph.MustFromEdges(1, nil)
	if got := Closeness(single, Options{}); got[0] != 0 {
		t.Errorf("singleton closeness = %v, want 0", got[0])
	}
}

func TestDegreeCentrality(t *testing.T) {
	g := gen.Star(5)
	got := Degree(g)
	if !approx(got[0], 1) {
		t.Errorf("hub degree centrality = %v, want 1", got[0])
	}
	if !approx(got[1], 0.25) {
		t.Errorf("leaf degree centrality = %v, want 0.25", got[1])
	}
	var empty graph.Graph
	if len(Degree(&empty)) != 0 {
		t.Error("empty degree centrality not empty")
	}
}
