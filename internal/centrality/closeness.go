package centrality

import (
	"time"

	"edgeshed/internal/graph"
	"edgeshed/internal/par"
)

// Closeness returns each node's closeness centrality in the Wasserman–Faust
// normalization for disconnected graphs:
//
//	C(u) = ((r-1)/(n-1)) · ((r-1) / Σ_{v reachable} d(u, v))
//
// where r is the size of u's reachable set. Isolated nodes score 0. The
// computation runs one BFS per node, source-strided across workers; each
// node's score is written independently, so the result is bit-identical at
// any worker count. opt's Samples field is ignored (closeness has no
// per-source decomposition), but Workers applies, and Obs — when set —
// reports a "closeness" span with per-worker busy time and a
// "closeness.sources_done" counter.
func Closeness(g *graph.Graph, opt Options) []float64 {
	n := g.NumNodes()
	scores := make([]float64, n)
	if n <= 1 {
		return scores
	}
	workers := par.Workers(opt.Workers, n)
	sp := opt.Obs.Start("closeness")
	defer sp.End()
	srcCtr := sp.Counter("closeness.sources_done")
	par.Run(workers, func(w int) {
		var t0 time.Time
		if sp.Enabled() {
			t0 = time.Now()
		}
		var done int64
		dist := make([]int32, n)
		for i := range dist {
			dist[i] = -1
		}
		queue := make([]graph.NodeID, 0, n)
		for su := w; su < n; su += workers {
			s := graph.NodeID(su)
			queue = queue[:0]
			dist[s] = 0
			queue = append(queue, s)
			var sum int64
			for head := 0; head < len(queue); head++ {
				v := queue[head]
				sum += int64(dist[v])
				for _, x := range g.Neighbors(v) {
					if dist[x] < 0 {
						dist[x] = dist[v] + 1
						queue = append(queue, x)
					}
				}
			}
			r := len(queue)
			if r > 1 && sum > 0 {
				rm1 := float64(r - 1)
				scores[s] = (rm1 / float64(n-1)) * (rm1 / float64(sum))
			}
			for _, v := range queue {
				dist[v] = -1
			}
			done++
		}
		if sp.Enabled() {
			srcCtr.AddAt(w, done)
			sp.WorkerBusy(w, time.Since(t0))
		}
	})
	return scores
}

// Degree returns degree centrality: deg(u)/(n-1), the cheapest importance
// measure (used by simplification-based reducers like OntoVis, paper
// reference [11]).
func Degree(g *graph.Graph) []float64 {
	n := g.NumNodes()
	scores := make([]float64, n)
	if n <= 1 {
		return scores
	}
	for u := 0; u < n; u++ {
		scores[u] = float64(g.Degree(graph.NodeID(u))) / float64(n-1)
	}
	return scores
}
