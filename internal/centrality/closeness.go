package centrality

import (
	"math/bits"
	"time"

	"edgeshed/internal/graph"
	"edgeshed/internal/msbfs"
	"edgeshed/internal/obs"
	"edgeshed/internal/par"
)

// Closeness returns each node's closeness centrality in the Wasserman–Faust
// normalization for disconnected graphs:
//
//	C(u) = ((r-1)/(n-1)) · ((r-1) / Σ_{v reachable} d(u, v))
//
// where r is the size of u's reachable set. Isolated nodes score 0.
//
// The computation runs the bit-parallel MS-BFS engine over pivot sources:
// every traversal carries up to 64 sources (Options.Batch bits wide), and
// each level's arrivals fold into per-TARGET reach counts and distance sums
// by popcount — undirected distances are symmetric, so d(pivot, u) counted
// at u estimates u's own outgoing sum. With Samples == 0 (or >= |V|) every
// node is a pivot and the counts are exact, reproducing the per-source
// formula bit for bit. With 0 < Samples < |V|, Samples pivots are drawn by
// the shared partial Fisher–Yates sampler (Seed) and u's reach and distance
// sum are scaled by |V|/Samples before normalizing, so cost drops from
// O(|V|·|E|) to O(Samples·|E|/64)-ish traversal work at the price of
// estimator variance; nodes no pivot reaches score 0.
//
// All accumulation is integer (exact in any order), so the scores are
// bit-identical at any Workers count and any Batch width. Obs — when set —
// reports a "closeness" span with per-worker busy time, batch unit
// progress, a "closeness.sources_done" counter and the engine's msbfs.*
// counters.
func Closeness(g *graph.Graph, opt Options) []float64 {
	n := g.NumNodes()
	scores := make([]float64, n)
	if n <= 1 {
		return scores
	}
	srcs, scale := opt.sources(n)
	c := g.CSR()
	width := msbfs.Width(opt.Batch)
	numBatches := (len(srcs) + width - 1) / width
	workers := par.Workers(opt.Workers, numBatches)
	sp := opt.Obs.Start("closeness")
	defer sp.End()
	sp.SetTotal(int64(numBatches))
	srcCtr := sp.Counter("closeness.sources_done")
	batchCtr := sp.Counter("msbfs.batches_done")
	wordCtr := sp.Counter("msbfs.words_scanned")
	swCtr := sp.Counter("msbfs.direction_switches")
	batchNs := sp.Histogram("msbfs.batch_ns")
	batchOcc := sp.Histogram("msbfs.batch_occupancy")
	levelWidth := sp.Histogram("msbfs.level_width")
	batchMk := sp.Marker(obs.EvBatch, "closeness")
	switchMk := sp.Marker(obs.EvDirSwitch, "closeness")
	// Per-worker partial reach counts and distance sums per target node;
	// integer, so the merge below is exact in any order.
	type partial struct {
		cnt, sum []int64
	}
	parts := make([]partial, workers)
	par.Run(workers, func(w int) {
		var t0 time.Time
		if sp.Enabled() {
			t0 = time.Now()
		}
		tr := msbfs.New(c, width, false)
		if sp.Enabled() {
			tr.OnSwitch = func(level int, bottomUp bool) {
				dir := int64(0)
				if bottomUp {
					dir = 1
				}
				switchMk.Emit(w, int64(level)<<1|dir)
			}
		}
		cnt := make([]int64, n)
		sum := make([]int64, n)
		var done int64
		for bi := w; bi < numBatches; bi += workers {
			lo := bi * width
			hi := min(lo+width, len(srcs))
			if sp.Enabled() {
				b0 := time.Now()
				tr.Run(srcs[lo:hi])
				batchNs.ObserveAt(w, time.Since(b0).Nanoseconds())
				batchOcc.ObserveAt(w, int64(hi-lo))
				batchMk.Emit(w, int64(hi-lo))
				for d := 0; d < tr.NumLevels(); d++ {
					nodes, _ := tr.Level(d)
					levelWidth.ObserveAt(w, int64(len(nodes)))
				}
			} else {
				tr.Run(srcs[lo:hi])
			}
			// Level 0 contributes reach (each pivot counts itself) at
			// distance 0; deeper levels contribute reach and distance.
			nodes0, words0 := tr.Level(0)
			for i, u := range nodes0 {
				cnt[u] += int64(bits.OnesCount64(words0[i]))
			}
			for d := 1; d < tr.NumLevels(); d++ {
				nodes, words := tr.Level(d)
				dd := int64(d)
				for i, u := range nodes {
					pc := int64(bits.OnesCount64(words[i]))
					cnt[u] += pc
					sum[u] += dd * pc
				}
			}
			done += int64(hi - lo)
			sp.Done(1)
		}
		parts[w] = partial{cnt: cnt, sum: sum}
		if sp.Enabled() {
			st := tr.Stats()
			srcCtr.AddAt(w, done)
			batchCtr.AddAt(w, st.Batches)
			wordCtr.AddAt(w, st.WordsScanned)
			swCtr.AddAt(w, st.Switches)
			sp.WorkerBusy(w, time.Since(t0))
		}
	})
	cnt, sum := parts[0].cnt, parts[0].sum
	for _, p := range parts[1:] {
		for u := range cnt {
			cnt[u] += p.cnt[u]
			sum[u] += p.sum[u]
		}
	}
	nm1 := float64(n - 1)
	if scale == 1 {
		// Exact: cnt[u] is r(u) and sum[u] the true distance sum, so this is
		// the per-source formula on the same integers — bit-identical.
		for u := range scores {
			r, s := cnt[u], sum[u]
			if r > 1 && s > 0 {
				rm1 := float64(r - 1)
				scores[u] = (rm1 / nm1) * (rm1 / float64(s))
			}
		}
	} else {
		// Sampled: estimate r(u) and the distance sum by the |V|/Samples
		// scale before normalizing.
		for u := range scores {
			s := sum[u]
			if s <= 0 {
				continue
			}
			rm1 := float64(cnt[u])*scale - 1
			if rm1 > 0 {
				scores[u] = (rm1 / nm1) * (rm1 / (float64(s) * scale))
			}
		}
	}
	return scores
}

// Degree returns degree centrality: deg(u)/(n-1), the cheapest importance
// measure (used by simplification-based reducers like OntoVis, paper
// reference [11]).
func Degree(g *graph.Graph) []float64 {
	n := g.NumNodes()
	scores := make([]float64, n)
	if n <= 1 {
		return scores
	}
	for u := 0; u < n; u++ {
		scores[u] = float64(g.Degree(graph.NodeID(u))) / float64(n-1)
	}
	return scores
}
