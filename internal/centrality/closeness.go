package centrality

import (
	"sync"

	"edgeshed/internal/graph"
)

// Closeness returns each node's closeness centrality in the Wasserman–Faust
// normalization for disconnected graphs:
//
//	C(u) = ((r-1)/(n-1)) · ((r-1) / Σ_{v reachable} d(u, v))
//
// where r is the size of u's reachable set. Isolated nodes score 0. The
// computation runs one BFS per node, parallelized like Betweenness; opt's
// Samples field is ignored (closeness has no per-source decomposition), but
// Workers applies.
func Closeness(g *graph.Graph, opt Options) []float64 {
	n := g.NumNodes()
	scores := make([]float64, n)
	if n <= 1 {
		return scores
	}
	workers := opt.workers()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan graph.NodeID, n)
	for u := 0; u < n; u++ {
		next <- graph.NodeID(u)
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dist := make([]int32, n)
			for i := range dist {
				dist[i] = -1
			}
			queue := make([]graph.NodeID, 0, n)
			for s := range next {
				queue = queue[:0]
				dist[s] = 0
				queue = append(queue, s)
				var sum int64
				for head := 0; head < len(queue); head++ {
					v := queue[head]
					sum += int64(dist[v])
					for _, x := range g.Neighbors(v) {
						if dist[x] < 0 {
							dist[x] = dist[v] + 1
							queue = append(queue, x)
						}
					}
				}
				r := len(queue)
				if r > 1 && sum > 0 {
					rm1 := float64(r - 1)
					scores[s] = (rm1 / float64(n-1)) * (rm1 / float64(sum))
				}
				for _, v := range queue {
					dist[v] = -1
				}
			}
		}()
	}
	wg.Wait()
	return scores
}

// Degree returns degree centrality: deg(u)/(n-1), the cheapest importance
// measure (used by simplification-based reducers like OntoVis, paper
// reference [11]).
func Degree(g *graph.Graph) []float64 {
	n := g.NumNodes()
	scores := make([]float64, n)
	if n <= 1 {
		return scores
	}
	for u := 0; u < n; u++ {
		scores[u] = float64(g.Degree(graph.NodeID(u))) / float64(n-1)
	}
	return scores
}
