package centrality

import (
	"fmt"
	"testing"

	"edgeshed/internal/graph/gen"
)

func BenchmarkNodeBetweennessExact(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NodeBetweenness(g, Options{})
	}
}

func BenchmarkEdgeBetweennessExact(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBetweenness(g, Options{})
	}
}

func BenchmarkEdgeBetweennessSampled(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBetweenness(g, Options{Samples: 128, Seed: 2})
	}
}

func BenchmarkBetweennessWorkers(b *testing.B) {
	g := gen.BarabasiAlbert(2000, 3, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				NodeBetweenness(g, Options{Workers: workers})
			}
		})
	}
}

func BenchmarkCloseness(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Closeness(g, Options{})
	}
}
