package centrality

import (
	"fmt"
	"testing"

	"edgeshed/internal/graph/gen"
)

func BenchmarkNodeBetweennessExact(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NodeBetweenness(g, Options{})
	}
}

func BenchmarkEdgeBetweennessExact(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBetweenness(g, Options{})
	}
}

func BenchmarkEdgeBetweennessSampled(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBetweenness(g, Options{Samples: 128, Seed: 2})
	}
}

// The MapIndexed/CSRIndexed pair tracks production against the seed
// map-indexed implementation: same BA graph and scale as
// BenchmarkEdgeBetweennessExact, single worker so the comparison measures
// the kernels rather than scheduling. CSRIndexed is whatever the public
// entry point runs — today the batched MS-BFS engine — so this pair is the
// cumulative production-vs-seed speedup, while the PerSource/MSBFS pairs
// below isolate the batching win alone. `make bench-centrality` records
// both pairs in BENCH_betweenness.json.

func BenchmarkEdgeBetweennessMapIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracleBoth(g, Options{Workers: 1}, false, true)
	}
}

func BenchmarkEdgeBetweennessCSRIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	g.CSR() // build outside the timer, as MapIndexed gets adj for free
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBetweennessScores(g, Options{Workers: 1})
	}
}

func BenchmarkNodeBetweennessMapIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracleBoth(g, Options{Workers: 1}, true, false)
	}
}

func BenchmarkNodeBetweennessCSRIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NodeBetweenness(g, Options{Workers: 1})
	}
}

func BenchmarkBetweennessWorkers(b *testing.B) {
	g := gen.BarabasiAlbert(2000, 3, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				NodeBetweenness(g, Options{Workers: workers})
			}
		})
	}
}

func BenchmarkCloseness(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Closeness(g, Options{})
	}
}

// The PerSource/MSBFS pairs are PR 7's perf criterion, recorded in
// BENCH_bfs.json by `make bench-bfs`: the replaced one-BFS-per-source
// kernels against the bit-parallel batched engine, single worker on the
// same graph, so the speedup is the batching alone — traversal sharing and
// word-level wavefronts, not scheduling.

func BenchmarkClosenessPerSource(b *testing.B) {
	g := gen.BarabasiAlbert(3000, 3, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		closenessPerSource(g)
	}
}

func BenchmarkClosenessMSBFS(b *testing.B) {
	g := gen.BarabasiAlbert(3000, 3, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Closeness(g, Options{Workers: 1})
	}
}

func BenchmarkNodeBetweennessPerSource(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		both(g, Options{Workers: 1}, true, false)
	}
}

func BenchmarkNodeBetweennessMSBFS(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NodeBetweenness(g, Options{Workers: 1})
	}
}

// The EdgeBetweennessScores pair is this PR's perf criterion, recorded in
// BENCH_betweenness.json: the preserved per-source edge path
// (persource.go) against the batched edge-dependency fold, single worker
// on the same graph — the CRR Phase 1 scorer before and after. Same BA
// shape and scale as the Closeness pair so the BFS-shaped kernels are
// compared on one footing. (The stem is the API entry point's name; the
// bare EdgeBetweenness stem already belongs to the MapIndexed/CSRIndexed
// pair above, and stems must be unique within one report.)

func BenchmarkEdgeBetweennessScoresPerSource(b *testing.B) {
	g := gen.BarabasiAlbert(3000, 3, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PerSourceEdgeBetweennessScores(g, Options{Workers: 1})
	}
}

func BenchmarkEdgeBetweennessScoresMSBFS(b *testing.B) {
	g := gen.BarabasiAlbert(3000, 3, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBetweennessScores(g, Options{Workers: 1})
	}
}
