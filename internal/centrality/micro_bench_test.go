package centrality

import (
	"fmt"
	"testing"

	"edgeshed/internal/graph/gen"
)

func BenchmarkNodeBetweennessExact(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NodeBetweenness(g, Options{})
	}
}

func BenchmarkEdgeBetweennessExact(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBetweenness(g, Options{})
	}
}

func BenchmarkEdgeBetweennessSampled(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBetweenness(g, Options{Samples: 128, Seed: 2})
	}
}

// The MapIndexed/CSRIndexed pair is the PR's perf criterion: same BA graph
// and scale as BenchmarkEdgeBetweennessExact, single worker so the
// comparison measures the accumulation kernel rather than scheduling. The
// `make bench-centrality` target records both in BENCH_betweenness.json.

func BenchmarkEdgeBetweennessMapIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracleBoth(g, Options{Workers: 1}, false, true)
	}
}

func BenchmarkEdgeBetweennessCSRIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	g.CSR() // build outside the timer, as MapIndexed gets adj for free
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBetweennessScores(g, Options{Workers: 1})
	}
}

func BenchmarkNodeBetweennessMapIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracleBoth(g, Options{Workers: 1}, true, false)
	}
}

func BenchmarkNodeBetweennessCSRIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NodeBetweenness(g, Options{Workers: 1})
	}
}

func BenchmarkBetweennessWorkers(b *testing.B) {
	g := gen.BarabasiAlbert(2000, 3, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				NodeBetweenness(g, Options{Workers: workers})
			}
		})
	}
}

func BenchmarkCloseness(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Closeness(g, Options{})
	}
}

// The PerSource/MSBFS pairs are PR 7's perf criterion, recorded in
// BENCH_bfs.json by `make bench-bfs`: the replaced one-BFS-per-source
// kernels against the bit-parallel batched engine, single worker on the
// same graph, so the speedup is the batching alone — traversal sharing and
// word-level wavefronts, not scheduling.

func BenchmarkClosenessPerSource(b *testing.B) {
	g := gen.BarabasiAlbert(3000, 3, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		closenessPerSource(g)
	}
}

func BenchmarkClosenessMSBFS(b *testing.B) {
	g := gen.BarabasiAlbert(3000, 3, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Closeness(g, Options{Workers: 1})
	}
}

func BenchmarkNodeBetweennessPerSource(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		both(g, Options{Workers: 1}, true, false)
	}
}

func BenchmarkNodeBetweennessMSBFS(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NodeBetweenness(g, Options{Workers: 1})
	}
}
