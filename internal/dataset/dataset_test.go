package dataset

import (
	"testing"

	"edgeshed/internal/analysis"
	"edgeshed/internal/graph"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 4 {
		t.Fatalf("catalog has %d entries, want 4", len(cat))
	}
	want := []string{"ca-GrQc", "ca-HepPh", "email-Enron", "com-LiveJournal"}
	for i, s := range cat {
		if s.Name != want[i] {
			t.Errorf("catalog[%d] = %q, want %q", i, s.Name, want[i])
		}
		if s.PaperNodes <= 0 || s.PaperEdges <= 0 {
			t.Errorf("%s: missing paper sizes", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("ca-GrQc")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if s.PaperNodes != 5242 || s.PaperEdges != 14496 {
		t.Errorf("ca-GrQc sizes = %d/%d, want 5242/14496", s.PaperNodes, s.PaperEdges)
	}
	if _, err := ByName("no-such"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestBuildScaled(t *testing.T) {
	for _, s := range Catalog() {
		scale := 64
		if s.PaperNodes < 100000 {
			scale = 8
		}
		g, err := s.Build(scale, s.DefaultSeed)
		if err != nil {
			t.Fatalf("%s: Build: %v", s.Name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid graph: %v", s.Name, err)
		}
		wantN := s.PaperNodes / scale
		if g.NumNodes() != wantN {
			t.Errorf("%s: |V| = %d, want %d", s.Name, g.NumNodes(), wantN)
		}
		// Average degree within a factor-2 band of the paper's.
		paperAvg := 2 * float64(s.PaperEdges) / float64(s.PaperNodes)
		got := g.AvgDegree()
		if got < paperAvg/2 || got > paperAvg*2 {
			t.Errorf("%s: avg degree %.2f outside [%.2f, %.2f]", s.Name, got, paperAvg/2, paperAvg*2)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	s, _ := ByName("ca-GrQc")
	a := s.MustBuild(8, 5)
	b := s.MustBuild(8, 5)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different |E|: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("same seed, edge %d differs", i)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	s, _ := ByName("ca-GrQc")
	if _, err := s.Build(0, 1); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := s.Build(1000000, 1); err == nil {
		t.Error("scale that empties the graph accepted")
	}
}

func TestHeavyTail(t *testing.T) {
	// The email-Enron stand-in must have hubs and leaves.
	s, _ := ByName("email-Enron")
	g := s.MustBuild(8, s.DefaultSeed)
	leaves, hubs := 0, 0
	for u := 0; u < g.NumNodes(); u++ {
		d := g.Degree(graph.NodeID(u))
		if d <= 1 {
			leaves++
		}
		if d >= 20*int(g.AvgDegree()) {
			hubs++
		}
	}
	if leaves < g.NumNodes()/10 {
		t.Errorf("too few leaves: %d of %d", leaves, g.NumNodes())
	}
	if hubs == 0 {
		t.Error("no hubs in email stand-in")
	}
}

func TestStandInFidelity(t *testing.T) {
	// Structural fidelity bands per DESIGN.md §2: not the real SNAP values,
	// but the properties each stand-in is responsible for reproducing.
	grqc, _ := ByName("ca-GrQc")
	g := grqc.MustBuild(16, grqc.DefaultSeed)
	if cc := analysis.AverageClustering(g, 0); cc < 0.25 {
		t.Errorf("ca-GrQc stand-in clustering = %.3f, want >= 0.25 (collaboration network)", cc)
	}
	hepph, _ := ByName("ca-HepPh")
	g = hepph.MustBuild(16, hepph.DefaultSeed)
	if cc := analysis.AverageClustering(g, 0); cc < 0.1 {
		t.Errorf("ca-HepPh stand-in clustering = %.3f, want >= 0.1", cc)
	}
	enron, _ := ByName("email-Enron")
	g = enron.MustBuild(16, enron.DefaultSeed)
	if gini := analysis.GiniDegree(g); gini < 0.5 {
		t.Errorf("email-Enron stand-in degree gini = %.3f, want >= 0.5 (hub/leaf profile)", gini)
	}
	if d := analysis.ApproxDiameter(g); d < 7 {
		t.Errorf("email-Enron stand-in diameter = %d, want >= 7 (real ~11)", d)
	}
}

func TestNames(t *testing.T) {
	n := Names()
	if len(n) != 4 || n[0] != "ca-GrQc" {
		t.Errorf("Names() = %v", n)
	}
}
