// Package dataset catalogs the synthetic stand-ins for the four SNAP
// datasets in the paper's Table II. The module is built offline, so the real
// downloads are unavailable; each stand-in is a seeded generator chosen to
// reproduce the structural properties the evaluation depends on —
// heavy-tailed degree distributions, the high clustering of co-authorship
// networks, the hub-dominated shape of an email network, and community
// structure. See DESIGN.md §2 for the substitution rationale.
//
// Every stand-in accepts a scale divisor: Build(scale, seed) produces a graph
// with roughly PaperNodes/scale nodes at the original average degree, so the
// large com-LiveJournal experiment can run on a laptop (the paper's whole
// point) while scale=1 reproduces the full sizes.
package dataset

import (
	"fmt"
	"sort"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

// Spec describes one dataset stand-in.
type Spec struct {
	// Name is the SNAP dataset name, e.g. "ca-GrQc".
	Name string
	// PaperNodes and PaperEdges are the sizes reported in Table II.
	PaperNodes, PaperEdges int
	// Description matches the paper's dataset table.
	Description string
	// DefaultSeed makes experiments reproducible out of the box.
	DefaultSeed int64
	// build constructs the stand-in at the given node count.
	build func(n int, seed int64) *graph.Graph
}

// Build generates the stand-in at the given scale divisor (>= 1) and seed.
// scale = 1 is the paper-reported size; scale = k shrinks the node count by
// k while preserving average degree and shape.
func (s Spec) Build(scale int, seed int64) (*graph.Graph, error) {
	if scale < 1 {
		return nil, fmt.Errorf("dataset: scale divisor %d < 1", scale)
	}
	n := s.PaperNodes / scale
	if n < 16 {
		return nil, fmt.Errorf("dataset: scale %d leaves only %d nodes of %s", scale, n, s.Name)
	}
	return s.build(n, seed), nil
}

// MustBuild is Build that panics on error; for tests and benches with
// known-good parameters.
func (s Spec) MustBuild(scale int, seed int64) *graph.Graph {
	g, err := s.Build(scale, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Catalog returns the four dataset stand-ins in the order of Table II.
func Catalog() []Spec {
	return []Spec{
		{
			Name:        "ca-GrQc",
			PaperNodes:  5242,
			PaperEdges:  14496,
			Description: "Collaboration network (General Relativity)",
			DefaultSeed: 101,
			// Avg degree 5.5; co-authorship graphs have strong triad
			// closure, so Holme–Kim with high pt.
			build: func(n int, seed int64) *graph.Graph {
				return gen.HolmeKim(n, 3, 0.75, seed)
			},
		},
		{
			Name:        "ca-HepPh",
			PaperNodes:  12008,
			PaperEdges:  118521,
			Description: "Collaboration network (High Energy Physics)",
			DefaultSeed: 202,
			// Avg degree 19.7; denser collaboration network.
			build: func(n int, seed int64) *graph.Graph {
				return gen.HolmeKim(n, 10, 0.8, seed)
			},
		},
		{
			Name:        "email-Enron",
			PaperNodes:  36692,
			PaperEdges:  183831,
			Description: "Email communication network",
			DefaultSeed: 303,
			// Avg degree 10 with extreme hubs (max degree ~1383 in the real
			// data) and many leaf accounts: a truncated power law realized
			// by the erased configuration model.
			build: func(n int, seed int64) *graph.Graph {
				maxDeg := n / 26 // ~1383 at full scale, shrinks with n
				if maxDeg < 8 {
					maxDeg = 8
				}
				deg := gen.PowerLawDegrees(n, 1.95, 1, maxDeg, seed)
				return gen.ConfigurationModel(deg, seed+1)
			},
		},
		{
			Name:        "com-LiveJournal",
			PaperNodes:  3997962,
			PaperEdges:  34681189,
			Description: "Online social network",
			DefaultSeed: 404,
			// Avg degree 17.3; social network with preferential attachment
			// and moderate clustering.
			build: func(n int, seed int64) *graph.Graph {
				return gen.HolmeKim(n, 9, 0.3, seed)
			},
		},
	}
}

// ByName returns the spec with the given name (case-sensitive, as printed in
// the paper).
func ByName(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range Catalog() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, names)
}

// Names returns the catalog names in Table II order.
func Names() []string {
	var names []string
	for _, s := range Catalog() {
		names = append(names, s.Name)
	}
	return names
}
