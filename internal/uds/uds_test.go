package uds

import (
	"math"
	"testing"

	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func TestSummarizeRejectsBadTau(t *testing.T) {
	g := gen.Cycle(10)
	for _, tau := range []float64{0, -0.2, 1.5, math.NaN()} {
		if _, err := (Summarizer{Tau: tau}).Summarize(g); err == nil {
			t.Errorf("τ_U = %v accepted", tau)
		}
	}
}

func TestHighTauBarelyMerges(t *testing.T) {
	// τ_U = 1 allows only merges with ΔU >= 0, so the summary stays close
	// to the original graph.
	g := gen.BarabasiAlbert(100, 3, 1)
	sum, err := Summarizer{Tau: 1}.Summarize(g)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Utility < 1-1e-9 {
		t.Errorf("utility fell below τ_U = 1: %v", sum.Utility)
	}
	if sum.NumSupernodes() < g.NumNodes()*8/10 {
		t.Errorf("τ_U = 1 merged too aggressively: %d supernodes of %d nodes",
			sum.NumSupernodes(), g.NumNodes())
	}
}

func TestLowerTauMergesMore(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 2)
	high, err := Summarizer{Tau: 0.9}.Summarize(g)
	if err != nil {
		t.Fatal(err)
	}
	low, err := Summarizer{Tau: 0.3}.Summarize(g)
	if err != nil {
		t.Fatal(err)
	}
	if low.NumSupernodes() >= high.NumSupernodes() {
		t.Errorf("τ=0.3 supernodes (%d) >= τ=0.9 supernodes (%d)",
			low.NumSupernodes(), high.NumSupernodes())
	}
	if low.Merges <= high.Merges {
		t.Errorf("τ=0.3 merges (%d) <= τ=0.9 merges (%d)", low.Merges, high.Merges)
	}
}

func TestUtilityRespectsThreshold(t *testing.T) {
	g := gen.ErdosRenyi(80, 200, 3)
	for _, tau := range []float64{0.3, 0.5, 0.8} {
		sum, err := Summarizer{Tau: tau}.Summarize(g)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Utility < tau-1e-9 {
			t.Errorf("τ=%v: final utility %v below threshold", tau, sum.Utility)
		}
		if sum.Utility > 1+1e-9 {
			t.Errorf("τ=%v: utility %v above 1", tau, sum.Utility)
		}
	}
}

func TestSuperOfPartition(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 4)
	sum, err := Summarizer{Tau: 0.5}.Summarize(g)
	if err != nil {
		t.Fatal(err)
	}
	// SuperOf must be consistent with Members: every node in exactly one
	// alive supernode.
	seen := make(map[graph.NodeID]int32)
	for sn, m := range sum.Members {
		for _, u := range m {
			if prev, dup := seen[u]; dup {
				t.Fatalf("node %d in supernodes %d and %d", u, prev, sn)
			}
			seen[u] = int32(sn)
			if sum.SuperOf[u] != int32(sn) {
				t.Fatalf("SuperOf[%d] = %d, but node listed in %d", u, sum.SuperOf[u], sn)
			}
		}
	}
	if len(seen) != g.NumNodes() {
		t.Errorf("partition covers %d of %d nodes", len(seen), g.NumNodes())
	}
}

func TestSuperSizes(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 5)
	sum, err := Summarizer{Tau: 0.4}.Summarize(g)
	if err != nil {
		t.Fatal(err)
	}
	sizes := sum.SuperSizes()
	total := 0
	for i, s := range sizes {
		if i > 0 && s > sizes[i-1] {
			t.Error("SuperSizes not sorted descending")
		}
		total += s
	}
	if total != g.NumNodes() {
		t.Errorf("sizes sum to %d, want %d", total, g.NumNodes())
	}
}

func TestExpandedGraphShape(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 6)
	sum, err := Summarizer{Tau: 0.5}.Summarize(g)
	if err != nil {
		t.Fatal(err)
	}
	ex := sum.ExpandedGraph(7)
	if ex.NumNodes() != g.NumNodes() {
		t.Errorf("expanded |V| = %d, want %d", ex.NumNodes(), g.NumNodes())
	}
	if ex.NumEdges() == 0 || ex.NumEdges() > g.NumEdges() {
		t.Errorf("expanded |E| = %d, want in (0, %d]", ex.NumEdges(), g.NumEdges())
	}
	if err := ex.Validate(); err != nil {
		t.Errorf("expanded graph invalid: %v", err)
	}
}

func TestExpandedGraphNoMergesRecoversOriginal(t *testing.T) {
	// With τ_U = 1 and ΔU < 0 for all merges on this graph, expansion must
	// reproduce the original edge set exactly (singleton supernodes imply
	// zero spurious pairs).
	g := gen.Cycle(12)
	sum, err := Summarizer{Tau: 1}.Summarize(g)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Merges == 0 {
		ex := sum.ExpandedGraph(1)
		if ex.NumEdges() != g.NumEdges() {
			t.Fatalf("expansion of unmerged summary: |E| = %d, want %d", ex.NumEdges(), g.NumEdges())
		}
		for _, e := range g.Edges() {
			if !ex.HasEdge(e.U, e.V) {
				t.Errorf("edge %v lost", e)
			}
		}
	}
}

func TestPageRankScores(t *testing.T) {
	g := gen.Star(20)
	sum, err := Summarizer{Tau: 0.9}.Summarize(g)
	if err != nil {
		t.Fatal(err)
	}
	pr := sum.PageRankScores(0.85, 40)
	if len(pr) != g.NumNodes() {
		t.Fatalf("scores length %d, want %d", len(pr), g.NumNodes())
	}
	var total float64
	for _, s := range pr {
		if s < 0 {
			t.Fatal("negative PageRank score")
		}
		total += s
	}
	if math.Abs(total-1) > 0.02 {
		t.Errorf("PageRank mass = %v, want ~1", total)
	}
	// The hub must outrank any leaf if it survived as (part of) its own
	// supernode.
	hubSuper := sum.SuperOf[0]
	if len(sum.Members[hubSuper]) == 1 && pr[0] <= pr[1] {
		t.Errorf("hub score %v <= leaf score %v", pr[0], pr[1])
	}
}

func TestReducerInterface(t *testing.T) {
	var r core.Reducer = Reducer{}
	if r.Name() != "UDS" {
		t.Errorf("Name = %q, want UDS", r.Name())
	}
	g := gen.BarabasiAlbert(80, 3, 8)
	res, err := r.Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced.NumNodes() != g.NumNodes() {
		t.Errorf("reduced |V| = %d, want %d", res.Reduced.NumNodes(), g.NumNodes())
	}
	if res.Reduced.NumEdges() == 0 {
		t.Error("UDS reduced graph has no edges")
	}
}

func TestUDSWorseDeltaThanBM2AtSmallP(t *testing.T) {
	// The paper's headline: degree-preserving shedding beats utility-driven
	// summarization on degree discrepancy at small p.
	g := gen.BarabasiAlbert(150, 3, 9)
	p := 0.3
	udsRes, err := Reducer{}.Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	bm2Res, err := (core.BM2{}).Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if bm2Res.Delta() >= udsRes.Delta() {
		t.Errorf("BM2 Δ = %v not better than UDS Δ = %v at p = %v",
			bm2Res.Delta(), udsRes.Delta(), p)
	}
}

func TestSkeletonGraph(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 12)
	sum, err := Summarizer{Tau: 0.4}.Summarize(g)
	if err != nil {
		t.Fatal(err)
	}
	sk := sum.SkeletonGraph()
	if err := sk.Validate(); err != nil {
		t.Fatalf("skeleton invalid: %v", err)
	}
	// The skeleton is at most one edge per superedge plus star interiors —
	// strictly sparser than the expansion once merging has happened.
	ex := sum.ExpandedGraph(1)
	if sum.Merges > 0 && sk.NumEdges() >= ex.NumEdges() {
		t.Errorf("skeleton |E| = %d not below expansion |E| = %d after %d merges",
			sk.NumEdges(), ex.NumEdges(), sum.Merges)
	}
}

func TestSkeletonModeDegradesDensityTasks(t *testing.T) {
	// The point of the skeleton view: at small τ it loses far more edges
	// than the expansion, collapsing density-driven signals.
	g := gen.BarabasiAlbert(200, 3, 13)
	exp, err := Reducer{}.Reduce(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	skel, err := Reducer{Skeleton: true}.Reduce(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if skel.Reduced.NumEdges() > exp.Reduced.NumEdges() {
		t.Errorf("skeleton edges %d > expansion edges %d",
			skel.Reduced.NumEdges(), exp.Reduced.NumEdges())
	}
	// At such an aggressive threshold the skeleton must have lost most of
	// the original density.
	if skel.Reduced.NumEdges() >= g.NumEdges()/2 {
		t.Errorf("skeleton kept %d of %d edges at τ=0.1; expected heavy loss",
			skel.Reduced.NumEdges(), g.NumEdges())
	}
}

// recomputeUtility re-derives the summary's utility from scratch out of its
// final state, independent of the incremental ΔU bookkeeping.
func recomputeUtility(s *Summary) float64 {
	var u float64
	for k, pi := range s.superEdges {
		if pi == nil || pi.edges == 0 {
			continue
		}
		sa, sb := len(s.Members[k[0]]), len(s.Members[k[1]])
		pairs := float64(sa) * float64(sb)
		spAll := (float64(sb)*s.nbSum[k[0]] + float64(sa)*s.nbSum[k[1]]) / 2 * s.penalty
		if keep := pi.imp - spAll*(1-float64(pi.edges)/pairs); keep > 0 {
			u += keep
		}
	}
	for sn, in := range s.internal {
		if s.Members[sn] == nil || in.edges == 0 {
			continue
		}
		k := float64(len(s.Members[sn]))
		pairs := k * (k - 1) / 2
		if pairs == 0 {
			continue
		}
		spAll := (k - 1) / 2 * s.nbSum[sn] * s.penalty
		if keep := in.imp - spAll*(1-float64(in.edges)/pairs); keep > 0 {
			u += keep
		}
	}
	return u
}

func TestUtilityBookkeepingConsistent(t *testing.T) {
	// The incrementally tracked utility (1 + Σ merge ΔU) must equal a
	// from-scratch recomputation over the final summary state — any error
	// in the ΔU simulation would show up here.
	for _, tau := range []float64{0.8, 0.5, 0.3} {
		g := gen.BarabasiAlbert(120, 3, 77)
		sum, err := Summarizer{Tau: tau}.Summarize(g)
		if err != nil {
			t.Fatal(err)
		}
		if re := recomputeUtility(sum); math.Abs(re-sum.Utility) > 1e-9 {
			t.Errorf("τ=%v: tracked utility %v != recomputed %v (after %d merges)",
				tau, sum.Utility, re, sum.Merges)
		}
	}
}

func TestDeterministicSummaries(t *testing.T) {
	g := gen.ErdosRenyi(70, 160, 10)
	a, err := Summarizer{Tau: 0.5}.Summarize(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Summarizer{Tau: 0.5}.Summarize(g)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSupernodes() != b.NumSupernodes() || math.Abs(a.Utility-b.Utility) > 1e-12 {
		t.Errorf("summaries differ across identical runs: %d/%v vs %d/%v",
			a.NumSupernodes(), a.Utility, b.NumSupernodes(), b.Utility)
	}
}
