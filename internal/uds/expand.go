package uds

import (
	"math/rand"
	"sort"

	"edgeshed/internal/core"
	"edgeshed/internal/graph"
)

// ExpandedGraph reconstructs a plain graph from the summary for running
// ordinary analysis algorithms, using expected-graph sampling: for every
// superpair (and supernode interior) whose superedge is kept, it materializes
// as many edges as the superpair originally carried, sampled uniformly from
// the implied member pairs. The result has roughly as many edges as the
// summary represents, but their placement inside merged regions is
// randomized — exactly the information UDS's aggregation has discarded.
func (s *Summary) ExpandedGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(s.Original.NumNodes())
	samplePairs := func(as, bs []graph.NodeID, count int) {
		// Sample `count` distinct pairs across as × bs (or within as when bs
		// is nil) by rejection, bounded to avoid pathological loops.
		maxAttempts := 20*count + 50
		for added, att := 0, 0; added < count && att < maxAttempts; att++ {
			var u, v graph.NodeID
			if bs == nil {
				u = as[rng.Intn(len(as))]
				v = as[rng.Intn(len(as))]
			} else {
				u = as[rng.Intn(len(as))]
				v = bs[rng.Intn(len(bs))]
			}
			if b.TryAddEdge(u, v) {
				added++
			}
		}
	}
	// Deterministic iteration order over the superedge map.
	keys := make([][2]int32, 0, len(s.superEdges))
	for k := range s.superEdges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		pi := s.superEdges[k]
		if !s.keepPair(k[0], k[1], pi) {
			continue
		}
		samplePairs(s.Members[k[0]], s.Members[k[1]], pi.edges)
	}
	for sn, in := range s.internal {
		if s.Members[sn] == nil || in.edges == 0 {
			continue
		}
		if !s.keepInternal(int32(sn), in) {
			continue
		}
		samplePairs(s.Members[sn], nil, in.edges)
	}
	return b.Graph()
}

// keepPair applies the same keep-vs-drop rule used during summarization.
func (s *Summary) keepPair(a, b int32, pi *pairInfo) bool {
	if pi == nil || pi.edges == 0 {
		return false
	}
	sa, sb := len(s.Members[a]), len(s.Members[b])
	pairs := float64(sa) * float64(sb)
	spAll := (float64(sb)*s.nbSum[a] + float64(sa)*s.nbSum[b]) / 2 * s.penalty
	return pi.imp-spAll*(1-float64(pi.edges)/pairs) > 0
}

// keepInternal is keepPair for supernode interiors.
func (s *Summary) keepInternal(a int32, in pairInfo) bool {
	if in.edges == 0 {
		return false
	}
	k := float64(len(s.Members[a]))
	pairs := k * (k - 1) / 2
	if pairs == 0 {
		return false
	}
	spAll := (k - 1) / 2 * s.nbSum[a] * s.penalty
	return in.imp-spAll*(1-float64(in.edges)/pairs) > 0
}

// SkeletonGraph reconstructs the summary as a sparse skeleton: every kept
// superedge becomes exactly one edge between representative members (the
// first member of each supernode), and supernode interiors become a star
// around the representative. This is the "analysis on the summary graph
// itself" view: aggressive at small τ_U, it collapses distances and
// degrees the way the paper reports for UDS. Compare ExpandedGraph, which
// conserves represented edge counts.
func (s *Summary) SkeletonGraph() *graph.Graph {
	b := graph.NewBuilder(s.Original.NumNodes())
	rep := func(sn int32) graph.NodeID { return s.Members[sn][0] }
	keys := make([][2]int32, 0, len(s.superEdges))
	for k := range s.superEdges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		if !s.keepPair(k[0], k[1], s.superEdges[k]) {
			continue
		}
		b.TryAddEdge(rep(k[0]), rep(k[1]))
	}
	for sn, in := range s.internal {
		if s.Members[sn] == nil || !s.keepInternal(int32(sn), in) {
			continue
		}
		r := rep(int32(sn))
		for _, u := range s.Members[sn][1:] {
			b.TryAddEdge(r, u)
		}
	}
	return b.Graph()
}

// PageRankScores runs PageRank on the weighted summary graph and spreads
// each supernode's score evenly over its members — UDS's "own processing
// method of supernodes" for top-k queries (Section V-A(6)). damping is
// typically 0.85; iters around 40.
func (s *Summary) PageRankScores(damping float64, iters int) []float64 {
	n := len(s.Members)
	// Weighted degree per alive supernode: kept superedges plus internal
	// self-weight.
	wdeg := make([]float64, n)
	type wedge struct {
		a, b int32
		w    float64
	}
	var edges []wedge
	for k, pi := range s.superEdges {
		if !s.keepPair(k[0], k[1], pi) {
			continue
		}
		w := float64(pi.edges)
		edges = append(edges, wedge{k[0], k[1], w})
		wdeg[k[0]] += w
		wdeg[k[1]] += w
	}
	selfW := make([]float64, n)
	for sn, in := range s.internal {
		if s.Members[sn] == nil || !s.keepInternal(int32(sn), in) {
			continue
		}
		selfW[sn] = float64(in.edges)
		wdeg[sn] += float64(in.edges)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	alive := 0
	for _, m := range s.Members {
		if m != nil {
			alive++
		}
	}
	if alive == 0 {
		return make([]float64, s.Original.NumNodes())
	}
	pr := make([]float64, n)
	next := make([]float64, n)
	for sn, m := range s.Members {
		if m != nil {
			pr[sn] = 1 / float64(alive)
		}
	}
	base := (1 - damping) / float64(alive)
	for it := 0; it < iters; it++ {
		var dangling float64
		for sn, m := range s.Members {
			if m == nil {
				continue
			}
			if wdeg[sn] == 0 {
				dangling += pr[sn]
				next[sn] = 0
				continue
			}
			next[sn] = selfW[sn] / wdeg[sn] * pr[sn]
		}
		for _, e := range edges {
			next[e.b] += e.w / wdeg[e.a] * pr[e.a]
			next[e.a] += e.w / wdeg[e.b] * pr[e.b]
		}
		for sn, m := range s.Members {
			if m == nil {
				pr[sn] = 0
				continue
			}
			pr[sn] = base + damping*(next[sn]+dangling/float64(alive))
			next[sn] = 0
		}
	}
	// Spread supernode scores over members.
	out := make([]float64, s.Original.NumNodes())
	for sn, m := range s.Members {
		if m == nil {
			continue
		}
		share := pr[sn] / float64(len(m))
		for _, u := range m {
			out[u] = share
		}
	}
	return out
}

// Reducer adapts UDS to the core.Reducer interface so the experiment harness
// can time and evaluate it alongside CRR and BM2. Reduce summarizes with
// τ_U = p (the paper's parameter setting) and returns the expanded graph as
// the "reduced" graph. Note the expanded graph is generally NOT a subgraph
// of the original: reconstruction rewires edges inside merged regions.
type Reducer struct {
	// Summarizer carries all knobs except Tau, which Reduce sets to p.
	Summarizer Summarizer
	// ExpandSeed drives the expected-graph sampling.
	ExpandSeed int64
	// Skeleton selects SkeletonGraph instead of ExpandedGraph as the
	// reduced graph: the summary-as-graph view that degrades density-driven
	// tasks the way the paper reports (see EXPERIMENTS.md note 1).
	Skeleton bool
}

// Name implements core.Reducer.
func (Reducer) Name() string { return "UDS" }

// Reduce implements core.Reducer.
func (r Reducer) Reduce(g *graph.Graph, p float64) (*core.Result, error) {
	_, sum, err := r.Summarize(g, p)
	if err != nil {
		return nil, err
	}
	return &core.Result{Original: g, Reduced: sum.ExpandedGraph(r.ExpandSeed), P: p}, nil
}

// Summarize runs UDS at τ_U = p and returns both the expanded graph and the
// summary, for callers (top-k evaluation) that need supernode structure.
func (r Reducer) Summarize(g *graph.Graph, p float64) (*graph.Graph, *Summary, error) {
	s := r.Summarizer
	s.Tau = p
	sum, err := s.Summarize(g)
	if err != nil {
		return nil, nil, err
	}
	if r.Skeleton {
		return sum.SkeletonGraph(), sum, nil
	}
	return sum.ExpandedGraph(r.ExpandSeed), sum, nil
}
