// Package uds reimplements the paper's comparator: Utility-Driven Graph
// Summarization (Kumar & Efstathopoulos, VLDB'19, paper reference [8]).
//
// UDS greedily merges node pairs into supernodes while the summary's utility
// stays above a user threshold τ_U. Utility credits every original edge
// represented by the summary with its importance and debits spurious pairs
// implied by superedges with an importance derived from node importances.
// Following the paper's experimental settings (Section V-A), both node and
// edge importance are betweenness centrality and τ_U = p.
//
// This is a reimplementation from the published description, simplified
// where the original is underspecified, but preserving the two behaviours
// the evaluation depends on: cost that grows steeply as τ_U falls (Table
// III) and lossy supernode aggregation that destroys degree and
// shortest-path detail at small τ_U (Figures 5-10).
package uds

import (
	"fmt"
	"math"
	"sort"

	"edgeshed/internal/centrality"
	"edgeshed/internal/graph"
	"edgeshed/internal/matching"
)

// Summarizer configures a UDS run.
type Summarizer struct {
	// Tau is the utility threshold τ_U in (0, 1]: merging stops when no
	// candidate merge can keep utility at or above Tau.
	Tau float64
	// SpuriousPenalty scales the importance charged for spurious pairs.
	// 0 means 1 (the neutral setting).
	SpuriousPenalty float64
	// MaxCandidatesPerNode caps how many 2-hop merge candidates are seeded
	// per node, the memoization-style bound UDS uses for scalability.
	// 0 means 16.
	MaxCandidatesPerNode int
	// Betweenness configures the importance computation; the zero value is
	// exact Brandes.
	Betweenness centrality.Options
	// Seed drives tie-breaking in candidate seeding.
	Seed int64
}

func (s Summarizer) penalty() float64 {
	if s.SpuriousPenalty <= 0 {
		return 1
	}
	return s.SpuriousPenalty
}

func (s Summarizer) candCap() int {
	if s.MaxCandidatesPerNode <= 0 {
		return 16
	}
	return s.MaxCandidatesPerNode
}

// Summary is the output of a UDS run: a mapping of original nodes into
// supernodes plus the surviving superedge structure.
type Summary struct {
	// Original is the summarized graph.
	Original *graph.Graph
	// SuperOf[u] is the supernode containing node u. Supernode ids are
	// arbitrary but stable within the summary.
	SuperOf []int32
	// Members[s] lists the nodes of alive supernode s; dead ids have nil.
	Members [][]graph.NodeID
	// Utility is the final summary utility in [0, 1].
	Utility float64
	// Merges is the number of merges performed.
	Merges int

	superEdges map[[2]int32]*pairInfo // alive superpair -> counts
	internal   []pairInfo             // per-super internal edges
	nbSum      []float64              // per-super Σ normalized node importance
	penalty    float64
}

// pairInfo tracks original edges between (or within) supernodes.
type pairInfo struct {
	edges int
	imp   float64 // Σ normalized importance of those edges
}

// NumSupernodes returns the number of alive supernodes.
func (s *Summary) NumSupernodes() int {
	n := 0
	for _, m := range s.Members {
		if m != nil {
			n++
		}
	}
	return n
}

// Summarize runs the greedy utility-driven merge loop on g.
func (s Summarizer) Summarize(g *graph.Graph) (*Summary, error) {
	if math.IsNaN(s.Tau) || s.Tau <= 0 || s.Tau > 1 {
		return nil, fmt.Errorf("uds: utility threshold τ_U = %v outside (0, 1]", s.Tau)
	}
	n := g.NumNodes()
	st := &state{
		g:       g,
		penalty: s.penalty(),
		summary: &Summary{
			Original:   g,
			SuperOf:    make([]int32, n),
			Members:    make([][]graph.NodeID, n),
			superEdges: make(map[[2]int32]*pairInfo),
			internal:   make([]pairInfo, n),
			nbSum:      make([]float64, n),
			Utility:    1,
		},
		adj: make([]map[int32]*pairInfo, n),
	}
	st.summary.penalty = st.penalty

	// Importances (paper settings: betweenness for both nodes and edges),
	// normalized to sum to 1 each. The edge scores arrive as a flat slice
	// aligned with g.Edges(), so edge i's importance is edgeImp[i] directly.
	nodeBC, edgeImp := centrality.Betweenness(g, s.Betweenness)
	normalize(nodeBC)
	normalize(edgeImp)

	for u := 0; u < n; u++ {
		st.summary.SuperOf[u] = int32(u)
		st.summary.Members[u] = []graph.NodeID{graph.NodeID(u)}
		st.summary.nbSum[u] = nodeBC[u]
		st.adj[u] = make(map[int32]*pairInfo)
	}
	for i, e := range g.Edges() {
		pi := &pairInfo{edges: 1, imp: edgeImp[i]}
		st.adj[e.U][int32(e.V)] = pi
		st.adj[e.V][int32(e.U)] = pi
		st.summary.superEdges[pairKey(int32(e.U), int32(e.V))] = pi
	}

	st.seedCandidates(s.candCap())
	st.run(s.Tau)
	st.summary.Utility = st.utility
	return st.summary, nil
}

func normalize(xs []float64) {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if sum <= 0 {
		// Degenerate graphs (no paths): fall back to uniform importance.
		if len(xs) > 0 {
			u := 1 / float64(len(xs))
			for i := range xs {
				xs[i] = u
			}
		}
		return
	}
	for i := range xs {
		xs[i] /= sum
	}
}

func pairKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// state is the mutable merge-loop state.
type state struct {
	g       *graph.Graph
	summary *Summary
	penalty float64
	utility float64
	adj     []map[int32]*pairInfo // alive super -> neighbor super -> info
	pq      matching.PQ[cand]
}

// cand is a queued merge candidate; its queued priority is the ΔU at scoring
// time and is re-verified at pop (see run).
type cand struct {
	a, b   int32
	deltaU float64
}

// alive reports whether supernode s still exists.
func (st *state) alive(s int32) bool { return st.summary.Members[s] != nil }

// contribution returns the utility contributed by superpair (a, b):
// the represented-edge importance minus the spurious-pair penalty if keeping
// the superedge wins, or zero if dropping it wins.
func (st *state) contribution(a, b int32, pi *pairInfo) float64 {
	if pi == nil || pi.edges == 0 {
		return 0
	}
	sa, sb := len(st.summary.Members[a]), len(st.summary.Members[b])
	pairs := float64(sa) * float64(sb)
	spAll := (float64(sb)*st.summary.nbSum[a] + float64(sa)*st.summary.nbSum[b]) / 2 * st.penalty
	keep := pi.imp - spAll*(1-float64(pi.edges)/pairs)
	if keep <= 0 {
		return 0
	}
	return keep
}

// internalContribution is the same for edges inside supernode a.
func (st *state) internalContribution(a int32, in pairInfo) float64 {
	if in.edges == 0 {
		return 0
	}
	k := float64(len(st.summary.Members[a]))
	pairs := k * (k - 1) / 2
	if pairs == 0 {
		return 0
	}
	spAll := (k - 1) / 2 * st.summary.nbSum[a] * st.penalty
	keep := in.imp - spAll*(1-float64(in.edges)/pairs)
	if keep <= 0 {
		return 0
	}
	return keep
}

// deltaU computes the utility change of merging supernodes a and b.
func (st *state) deltaU(a, b int32) float64 {
	sum := st.summary
	var old, neu float64
	// Old: internals of a and b, the (a, b) pair, and both stars.
	old += st.internalContribution(a, sum.internal[a])
	old += st.internalContribution(b, sum.internal[b])
	ab := st.adj[a][b]
	old += st.contribution(a, b, ab)
	for c, pi := range st.adj[a] {
		if c != b {
			old += st.contribution(a, c, pi)
		}
	}
	for c, pi := range st.adj[b] {
		if c != a {
			old += st.contribution(b, c, pi)
		}
	}

	// New: simulate the merged supernode without mutating.
	mergedLen := len(sum.Members[a]) + len(sum.Members[b])
	mergedNB := sum.nbSum[a] + sum.nbSum[b]
	mergedInternal := pairInfo{
		edges: sum.internal[a].edges + sum.internal[b].edges,
		imp:   sum.internal[a].imp + sum.internal[b].imp,
	}
	if ab != nil {
		mergedInternal.edges += ab.edges
		mergedInternal.imp += ab.imp
	}
	neu += simulateInternal(mergedLen, mergedNB, mergedInternal, st.penalty)
	// Star of the merged node: union of neighbors with summed infos.
	seen := make(map[int32]pairInfo, len(st.adj[a])+len(st.adj[b]))
	for c, pi := range st.adj[a] {
		if c != b {
			seen[c] = *pi
		}
	}
	for c, pi := range st.adj[b] {
		if c == a {
			continue
		}
		cur := seen[c]
		cur.edges += pi.edges
		cur.imp += pi.imp
		seen[c] = cur
	}
	for c, pi := range seen {
		cs := len(sum.Members[c])
		neu += simulatePair(mergedLen, mergedNB, cs, sum.nbSum[c], pi, st.penalty)
	}
	return neu - old
}

// simulatePair is contribution() over hypothetical supernode sizes.
func simulatePair(sa int, nbA float64, sb int, nbB float64, pi pairInfo, penalty float64) float64 {
	if pi.edges == 0 {
		return 0
	}
	pairs := float64(sa) * float64(sb)
	spAll := (float64(sb)*nbA + float64(sa)*nbB) / 2 * penalty
	keep := pi.imp - spAll*(1-float64(pi.edges)/pairs)
	if keep <= 0 {
		return 0
	}
	return keep
}

// simulateInternal is internalContribution() over a hypothetical supernode.
func simulateInternal(size int, nb float64, in pairInfo, penalty float64) float64 {
	if in.edges == 0 {
		return 0
	}
	k := float64(size)
	pairs := k * (k - 1) / 2
	if pairs == 0 {
		return 0
	}
	spAll := (k - 1) / 2 * nb * penalty
	keep := in.imp - spAll*(1-float64(in.edges)/pairs)
	if keep <= 0 {
		return 0
	}
	return keep
}

// seedCandidates queues adjacent pairs plus a capped set of 2-hop pairs.
func (st *state) seedCandidates(cap2hop int) {
	n := st.g.NumNodes()
	pushed := make(map[[2]int32]struct{})
	push := func(a, b int32) {
		if a == b {
			return
		}
		k := pairKey(a, b)
		if _, ok := pushed[k]; ok {
			return
		}
		pushed[k] = struct{}{}
		d := st.deltaU(a, b)
		st.pq.Push(cand{a: k[0], b: k[1], deltaU: d}, d)
	}
	for u := 0; u < n; u++ {
		for _, v := range st.g.Neighbors(graph.NodeID(u)) {
			if int32(u) < int32(v) {
				push(int32(u), int32(v))
			}
		}
		// 2-hop pairs through u: link u's first-capped neighbors pairwise is
		// quadratic; instead pair u with its neighbors' neighbors, capped.
		added := 0
		for _, v := range st.g.Neighbors(graph.NodeID(u)) {
			for _, w := range st.g.Neighbors(v) {
				if int32(w) <= int32(u) || st.g.HasEdge(graph.NodeID(u), w) {
					continue
				}
				push(int32(u), int32(w))
				added++
				if added >= cap2hop {
					break
				}
			}
			if added >= cap2hop {
				break
			}
		}
	}
}

// run executes the greedy merge loop until utility would fall below tau.
//
// Queued ΔU values go stale whenever anything in a candidate's
// 2-neighborhood merges, so every pop re-scores the candidate: if the fresh
// value no longer beats the next-best queued priority, the candidate is
// re-queued at its fresh score instead of being applied. Applied merges
// therefore always use an exact ΔU, keeping the tracked utility consistent
// with the summary state (TestUtilityBookkeepingConsistent).
func (st *state) run(tau float64) {
	st.utility = 1
	for {
		c, stale, ok := st.pq.Pop()
		if !ok {
			return
		}
		if !st.alive(c.a) || !st.alive(c.b) {
			continue
		}
		d := st.deltaU(c.a, c.b)
		if _, next, hasNext := st.pq.Peek(); hasNext && d < next && d < stale {
			// No longer the best candidate: requeue at the fresh score.
			st.pq.Push(cand{a: c.a, b: c.b, deltaU: d}, d)
			continue
		}
		if st.utility+d < tau {
			// The best (fresh) candidate would cross the threshold; no
			// other candidate can do better. Stop.
			return
		}
		st.merge(c.a, c.b, d)
	}
}

// merge folds supernode b into a (small-to-large on adjacency size).
func (st *state) merge(a, b int32, dU float64) {
	sum := st.summary
	if len(st.adj[a]) < len(st.adj[b]) {
		a, b = b, a
	}
	// Internal edges: b's internals plus the (a, b) superedge become
	// internal to a.
	sum.internal[a].edges += sum.internal[b].edges
	sum.internal[a].imp += sum.internal[b].imp
	if ab := st.adj[a][b]; ab != nil {
		sum.internal[a].edges += ab.edges
		sum.internal[a].imp += ab.imp
		delete(st.adj[a], b)
		delete(sum.superEdges, pairKey(a, b))
	}
	// Rewire b's star onto a.
	for c, pi := range st.adj[b] {
		if c == a {
			continue
		}
		delete(st.adj[c], b)
		delete(sum.superEdges, pairKey(b, c))
		if cur := st.adj[a][c]; cur != nil {
			cur.edges += pi.edges
			cur.imp += pi.imp
		} else {
			st.adj[a][c] = pi
			st.adj[c][a] = pi
			sum.superEdges[pairKey(a, c)] = pi
		}
	}
	st.adj[b] = nil
	sum.nbSum[a] += sum.nbSum[b]
	sum.nbSum[b] = 0
	for _, u := range sum.Members[b] {
		sum.SuperOf[u] = a
	}
	sum.Members[a] = append(sum.Members[a], sum.Members[b]...)
	sum.Members[b] = nil
	sum.internal[b] = pairInfo{}
	st.utility += dU
	sum.Merges++
	// Re-seed candidates around the merged supernode.
	for c := range st.adj[a] {
		k := pairKey(a, c)
		d := st.deltaU(a, c)
		st.pq.Push(cand{a: k[0], b: k[1], deltaU: d}, d)
	}
}

// String implements fmt.Stringer with a compact summary.
func (s *Summary) String() string {
	return fmt.Sprintf("uds.Summary{supernodes=%d merges=%d utility=%.3f}",
		s.NumSupernodes(), s.Merges, s.Utility)
}

// SuperSizes returns the member count of each alive supernode, sorted
// descending; useful for inspecting how aggressive a summary is.
func (s *Summary) SuperSizes() []int {
	var sizes []int
	for _, m := range s.Members {
		if m != nil {
			sizes = append(sizes, len(m))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
