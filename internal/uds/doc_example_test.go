package uds_test

import (
	"fmt"

	"edgeshed/internal/graph/gen"
	"edgeshed/internal/uds"
)

// ExampleSummarizer summarizes a graph at a utility threshold and inspects
// the resulting supernode structure.
func ExampleSummarizer() {
	g := gen.BarabasiAlbert(100, 3, 1)
	sum, err := uds.Summarizer{Tau: 0.5}.Summarize(g)
	if err != nil {
		panic(err)
	}
	fmt.Println("utility stayed above τ:", sum.Utility >= 0.5)
	fmt.Println("merged anything:", sum.Merges > 0)
	fmt.Println("partition intact:", len(sum.SuperOf) == g.NumNodes())
	// Output:
	// utility stayed above τ: true
	// merged anything: true
	// partition intact: true
}
