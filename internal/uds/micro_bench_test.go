package uds

import (
	"fmt"
	"testing"

	"edgeshed/internal/graph/gen"
)

// BenchmarkSummarize shows UDS's defining cost curve: runtime grows as τ_U
// falls (more merges, each touching more state) — the Table III shape.
func BenchmarkSummarize(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 4, 1)
	for _, tau := range []float64{0.9, 0.5, 0.1} {
		b.Run(fmt.Sprintf("tau=%.1f", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (Summarizer{Tau: tau}).Summarize(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExpandedGraph(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 4, 1)
	sum, err := Summarizer{Tau: 0.3}.Summarize(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum.ExpandedGraph(int64(i))
	}
}

func BenchmarkSupernodePageRank(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 4, 1)
	sum, err := Summarizer{Tau: 0.3}.Summarize(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum.PageRankScores(0.85, 50)
	}
}
