package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgeshed/internal/obs"
)

const sample = `goos: linux
goarch: amd64
pkg: edgeshed/internal/centrality
cpu: some cpu
BenchmarkEdgeBetweennessMapIndexed-8   	       2	  60000000 ns/op	  500000 B/op	    1200 allocs/op
BenchmarkEdgeBetweennessCSRIndexed-8   	       6	  20000000 ns/op	  100000 B/op	      40 allocs/op
BenchmarkCloseness-8                   	       3	   1000000 ns/op
PASS
ok  	edgeshed/internal/centrality	1.234s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "EdgeBetweennessMapIndexed" || b.Procs != 8 || b.Iterations != 2 {
		t.Errorf("first benchmark parsed as %+v", b)
	}
	if b.NsPerOp != 60000000 || b.BytesPerOp != 500000 || b.AllocsPerOp != 1200 {
		t.Errorf("metrics parsed as %+v", b)
	}
	if rep.Benchmarks[2].BytesPerOp != 0 || rep.Benchmarks[2].AllocsPerOp != 0 {
		t.Errorf("benchmark without -benchmem columns parsed as %+v", rep.Benchmarks[2])
	}
	got, ok := rep.Speedups["EdgeBetweenness"]
	if !ok {
		t.Fatal("no EdgeBetweenness speedup derived")
	}
	if got < 2.99 || got > 3.01 {
		t.Errorf("speedup = %v, want 3.0", got)
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkBroken garbage\nBenchmarkAlso-bad\nnothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from garbage, want 0", len(rep.Benchmarks))
	}
	if rep.Speedups != nil {
		t.Errorf("speedups = %v, want none", rep.Speedups)
	}
}

func TestParseNameWithoutProcsSuffix(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkThing 	 5 	 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(rep.Benchmarks))
	}
	if b := rep.Benchmarks[0]; b.Name != "Thing" || b.Procs != 1 || b.NsPerOp != 100 {
		t.Errorf("parsed as %+v", b)
	}
}

func TestSerialParallelSpeedupPair(t *testing.T) {
	input := `BenchmarkDistanceProfileSerial-4   	       1	  80000000 ns/op
BenchmarkDistanceProfileParallel-4 	       4	  20000000 ns/op
BenchmarkClusteringSerial          	       2	  30000000 ns/op
`
	rep, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rep.Speedups["DistanceProfile"]
	if !ok {
		t.Fatal("no DistanceProfile speedup derived from Serial/Parallel pair")
	}
	if got < 3.99 || got > 4.01 {
		t.Errorf("speedup = %v, want 4.0", got)
	}
	if _, ok := rep.Speedups["Clustering"]; ok {
		t.Error("unpaired ClusteringSerial produced a speedup")
	}
}

// TestReadFileRoundTrip pins the consumer half: a marshaled Report (with
// env) loads back through ReadFile bit-compatibly, and ByName indexes it.
func TestReadFileRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	rep.Env = obs.CaptureEnv()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("round-trip lost benchmarks: %d != %d", len(back.Benchmarks), len(rep.Benchmarks))
	}
	if back.Env == nil || back.Env.GOOS != rep.Env.GOOS || back.Env.CPUs != rep.Env.CPUs {
		t.Fatalf("env did not round-trip: %+v", back.Env)
	}
	if b, ok := back.ByName()["Closeness"]; !ok || b.NsPerOp != 1000000 {
		t.Fatalf("ByName lookup = %+v, %v", b, ok)
	}
}

// TestReadFileRejectsBadBaselines pins the error paths the gate depends on:
// a missing file, malformed JSON, and a benchmark-less document all fail.
func TestReadFileRejectsBadBaselines(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("absent baseline accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if _, err := ReadFile(bad); err == nil {
		t.Error("malformed baseline accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"benchmarks":[]}`), 0o644)
	if _, err := ReadFile(empty); err == nil {
		t.Error("benchmark-less baseline accepted")
	}
}

func TestTextPackedSpeedupPair(t *testing.T) {
	input := `BenchmarkIngestTextLoad-8   	       5	  50000000 ns/op
BenchmarkIngestPackedLoad-8 	     100	   2000000 ns/op
`
	rep, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rep.Speedups["Ingest"]
	if !ok {
		t.Fatal("no Ingest speedup derived from TextLoad/PackedLoad pair")
	}
	if got < 24.99 || got > 25.01 {
		t.Errorf("speedup = %v, want 25.0", got)
	}
}

func TestPerSourceMSBFSSpeedupPair(t *testing.T) {
	input := `BenchmarkClosenessPerSource-8   	       2	  60000000 ns/op
BenchmarkClosenessMSBFS-8       	      20	  12000000 ns/op
`
	rep, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rep.Speedups["Closeness"]
	if !ok {
		t.Fatal("no Closeness speedup derived from PerSource/MSBFS pair")
	}
	if got < 4.99 || got > 5.01 {
		t.Errorf("speedup = %v, want 5.0", got)
	}
}

// TestEdgeBetweennessAndCRRSpeedupPairs pins the stems the batched
// edge-dependency fold reports through `make bench-centrality` and
// `make bench-shedding`: the kernel-level EdgeBetweennessScores pair and the
// end-to-end CRRReduceExact pair both derive from the same
// PerSource/MSBFS suffix convention, independently per stem.
func TestEdgeBetweennessAndCRRSpeedupPairs(t *testing.T) {
	input := `BenchmarkEdgeBetweennessScoresPerSource-8 	       2	 600000000 ns/op
BenchmarkEdgeBetweennessScoresMSBFS-8     	       5	 200000000 ns/op
BenchmarkCRRReduceExactPerSource-8  	      14	  77000000 ns/op
BenchmarkCRRReduceExactMSBFS-8      	      39	  27500000 ns/op
`
	rep, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	edge, ok := rep.Speedups["EdgeBetweennessScores"]
	if !ok {
		t.Fatal("no EdgeBetweennessScores speedup derived")
	}
	if edge < 2.99 || edge > 3.01 {
		t.Errorf("EdgeBetweennessScores speedup = %v, want 3.0", edge)
	}
	crr, ok := rep.Speedups["CRRReduceExact"]
	if !ok {
		t.Fatal("no CRRReduceExact speedup derived")
	}
	if crr < 2.79 || crr > 2.81 {
		t.Errorf("CRRReduceExact speedup = %v, want 2.8", crr)
	}
}
