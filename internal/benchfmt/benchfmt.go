// Package benchfmt is the shared model of the repository's committed
// benchmark baselines (BENCH_*.json): the parser that turns `go test
// -bench` text output into a Report (the producer side, cmd/benchjson) and
// the reader that loads a committed baseline back (the consumer side,
// cmd/obsdiff). Keeping both halves on one set of types is what lets the
// regression gate trust the files it diffs.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"edgeshed/internal/obs"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and the
	// -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix, 1 if absent.
	Procs int `json:"procs"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem, else 0.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Report is the BENCH_*.json document.
type Report struct {
	// Env identifies the machine and toolchain the numbers were measured
	// on, so consumers can refuse cross-machine comparisons; absent in
	// baselines recorded before it existed.
	Env *obs.Env `json:"env,omitempty"`
	// Benchmarks holds every parsed result line in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Speedups maps a benchmark stem to old-ns / new-ns for every stem that
	// has both variants of a recognized pair (MapIndexed/CSRIndexed,
	// Serial/Parallel, TextLoad/PackedLoad, PerSource/MSBFS).
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

// ByName indexes the report's benchmarks by name (last entry wins for
// duplicates, which well-formed bench output does not produce).
func (r *Report) ByName() map[string]Benchmark {
	out := make(map[string]Benchmark, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		out[b.Name] = b
	}
	return out
}

// Parse scans `go test -bench` output, ignoring non-result lines
// (goos/pkg/PASS/ok), and derives the recognized speedup pairs.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Speedups: map[string]float64{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	deriveSpeedups(rep)
	return rep, nil
}

// ReadFile loads a committed BENCH_*.json baseline.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchfmt: parsing %s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: %s holds no benchmarks", path)
	}
	return &rep, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  10  123 ns/op  45 B/op  6 allocs/op
//
// reporting ok=false for lines that only look like results.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, true
}

// speedupPairs are the recognized old/new benchmark suffix conventions:
// the old variant's ns/op divided by the new variant's becomes the stem's
// speedup. PerSource/MSBFS covers every preserved-kernel-vs-batched-engine
// pair — Closeness, NodeBetweenness, EdgeBetweennessScores and the
// end-to-end CRRReduceExact — each deriving its own stem. Stems must be
// unique within one report: two pairs sharing a stem would silently
// overwrite each other's entry in Speedups.
var speedupPairs = [][2]string{
	{"MapIndexed", "CSRIndexed"},
	{"Serial", "Parallel"},
	{"TextLoad", "PackedLoad"},
	{"PerSource", "MSBFS"},
}

// deriveSpeedups fills Speedups from every benchmark pair matching a
// recognized suffix convention.
func deriveSpeedups(rep *Report) {
	byName := rep.ByName()
	for name, oldB := range byName {
		for _, pair := range speedupPairs {
			stem, ok := strings.CutSuffix(name, pair[0])
			if !ok {
				continue
			}
			newB, ok := byName[stem+pair[1]]
			if !ok || newB.NsPerOp == 0 {
				continue
			}
			rep.Speedups[stem] = oldB.NsPerOp / newB.NsPerOp
		}
	}
	if len(rep.Speedups) == 0 {
		rep.Speedups = nil
	}
}
