package stream_test

import (
	"fmt"

	"edgeshed/internal/graph/gen"
	"edgeshed/internal/stream"
)

// ExampleShedder processes an edge stream with bounded memory, maintaining
// a degree-preserving reduction at p = 0.5.
func ExampleShedder() {
	s, err := stream.NewShedder(stream.Options{P: 0.5, Seed: 1, Nodes: 50})
	if err != nil {
		panic(err)
	}
	for _, e := range gen.BarabasiAlbert(50, 2, 2).Edges() {
		if err := s.Insert(e.U, e.V); err != nil {
			panic(err)
		}
	}
	fmt.Println("seen:", s.Seen())
	fmt.Println("kept:", s.Kept())
	fmt.Println("snapshot valid:", s.Snapshot().Validate() == nil)
	// Output:
	// seen: 97
	// kept: 49
	// snapshot valid: true
}
