// Package stream extends the paper's degree-preserving edge shedding to
// edge streams, the setting of its related work on graph stream
// summarization (TCM, GSS — references [15], [16]). A Shedder consumes edge
// insertions one at a time and maintains a reduced edge set of size
// [p·m] (m = edges seen so far) that tracks the expected degrees p·deg(u),
// using only O(|E'| + |V|) memory: shed edges are forgotten, which is the
// point of shedding under resource constraints.
//
// The policy is a streaming analogue of CRR's Phase 2: grow with the stream
// while below budget, and otherwise consider swapping the incoming edge
// against a small random sample of kept edges, accepting the swap that most
// reduces the degree discrepancy Δ.
package stream

import (
	"fmt"
	"math"
	"math/rand"

	"edgeshed/internal/graph"
	"edgeshed/internal/obs"
)

// Shedder incrementally sheds a stream of edge insertions.
type Shedder struct {
	p          float64
	rng        *rand.Rand
	candidates int

	seen    int64 // edges observed
	origDeg []int64
	keptDeg []int32
	kept    []graph.Edge

	// Kept-edge positions are looked up in two tiers. Edges of the optional
	// base graph resolve through its CSR view to a canonical edge id and
	// index the flat basePos array (-1 = not kept); only edges the base has
	// never seen — truly novel stream edges — fall back to hashing into the
	// map. On replayed or mostly-known streams the hot path never hashes a
	// graph.Edge.
	base    *graph.CSR
	basePos []int32
	index   map[graph.Edge]int32 // novel kept edge -> position in kept

	// Counter handles, resolved once at construction. All nil when
	// Options.Obs is nil: every Add through a nil handle is a free no-op,
	// so unobserved streams pay one predictable branch per event.
	insCtr   *obs.Counter
	novelCtr *obs.Counter
	swapCtr  *obs.Counter
	delCtr   *obs.Counter

	// Quality probes, folded once per StreamEpoch inserts (DESIGN.md §12):
	// the hot path only bumps the two plain epoch tallies, and the O(|V|)
	// Delta scan runs at epoch cadence only. Nil without Options.Obs.
	qSwap      *obs.Probe
	qDelta     *obs.Probe
	qKept      *obs.Probe
	epochIns   int
	epochSwaps int
}

// Options configures a Shedder.
type Options struct {
	// P is the edge preservation ratio in (0, 1).
	P float64
	// Candidates is how many random kept edges are examined per eviction
	// decision; 0 means 8. Larger values trade throughput for quality.
	Candidates int
	// Seed drives candidate sampling.
	Seed int64
	// Nodes pre-sizes per-node state; the shedder grows on demand if node
	// ids exceed it.
	Nodes int
	// Base optionally declares a graph whose edges the stream is expected to
	// (mostly) draw from — the natural case when replaying a stored graph as
	// a stream. Base-graph edges then track their kept position in a flat
	// array indexed by canonical edge id instead of a map; the stream may
	// still contain arbitrary novel edges, which use the map as before.
	// Setting Base never changes the shedder's output, only its speed.
	Base *graph.Graph
	// Obs is the parent observability span; nil (the zero value) records
	// nothing at no cost. When set, the shedder tallies "stream.inserts",
	// "stream.novel_kept" (kept edges the base graph never saw),
	// "stream.swaps_accepted" and "stream.deletes", and folds the
	// "stream.epoch.*" quality probes every StreamEpoch insertions. The
	// kept edge set stays bit-identical with Obs on or off: counting never
	// touches the rng (pinned by TestShedderBitIdenticalWithObs).
	Obs *obs.Span
}

// NewShedder returns a shedder maintaining a [p·m]-edge reduction.
func NewShedder(opt Options) (*Shedder, error) {
	if math.IsNaN(opt.P) || opt.P <= 0 || opt.P >= 1 {
		return nil, fmt.Errorf("stream: edge preservation ratio p = %v outside (0, 1)", opt.P)
	}
	cand := opt.Candidates
	if cand <= 0 {
		cand = 8
	}
	n := opt.Nodes
	if n < 0 {
		n = 0
	}
	if opt.Base != nil && opt.Base.NumNodes() > n {
		n = opt.Base.NumNodes()
	}
	s := &Shedder{
		p:          opt.P,
		rng:        rand.New(rand.NewSource(opt.Seed)),
		candidates: cand,
		origDeg:    make([]int64, n),
		keptDeg:    make([]int32, n),
		index:      make(map[graph.Edge]int32),
	}
	if opt.Base != nil {
		s.base = opt.Base.CSR()
		s.basePos = make([]int32, opt.Base.NumEdges())
		for i := range s.basePos {
			s.basePos[i] = -1
		}
	}
	if opt.Obs.Enabled() {
		s.insCtr = opt.Obs.Counter("stream.inserts")
		s.novelCtr = opt.Obs.Counter("stream.novel_kept")
		s.swapCtr = opt.Obs.Counter("stream.swaps_accepted")
		s.delCtr = opt.Obs.Counter("stream.deletes")
		s.qSwap = opt.Obs.Quality("stream.epoch.swap_rate", obs.DirInfo)
		s.qDelta = opt.Obs.Quality("stream.epoch.delta", obs.DirLower)
		s.qKept = opt.Obs.Quality("stream.epoch.kept_fraction", obs.DirInfo)
	}
	return s, nil
}

// StreamEpoch is how many insertions pass between quality-probe folds: the
// per-epoch swap rate, the exact Δ (an O(|V|) scan, invisible at this
// cadence) and the kept fraction. Exported so tests and callers can size
// streams to hit epoch boundaries.
const StreamEpoch = 1 << 14

// foldEpoch records the epoch's quality stats and resets the tallies.
// Called only when probes are live; reads shedder state, never mutates
// anything the swap policy consumes, so the kept set stays bit-identical
// with observation on or off.
func (s *Shedder) foldEpoch() {
	s.qSwap.Record(s.p, float64(s.epochSwaps)/float64(s.epochIns))
	s.qDelta.Record(s.p, s.Delta())
	frac := 0.0
	if s.seen > 0 {
		frac = float64(len(s.kept)) / float64(s.seen)
	}
	s.qKept.Record(s.p, frac)
	s.epochIns, s.epochSwaps = 0, 0
}

// lookup returns the kept position of e, resolving base-graph edges through
// the flat basePos array and novel edges through the map.
func (s *Shedder) lookup(e graph.Edge) (int32, bool) {
	if s.base != nil {
		if id := s.base.EdgeIDOf(e.U, e.V); id >= 0 {
			pos := s.basePos[id]
			return pos, pos >= 0
		}
	}
	i, ok := s.index[e]
	return i, ok
}

// setPos records e's position in the kept slice.
func (s *Shedder) setPos(e graph.Edge, pos int32) {
	if s.base != nil {
		if id := s.base.EdgeIDOf(e.U, e.V); id >= 0 {
			s.basePos[id] = pos
			return
		}
	}
	s.index[e] = pos
}

// delPos forgets e's position.
func (s *Shedder) delPos(e graph.Edge) {
	if s.base != nil {
		if id := s.base.EdgeIDOf(e.U, e.V); id >= 0 {
			s.basePos[id] = -1
			return
		}
	}
	delete(s.index, e)
}

// grow ensures per-node state covers node u.
func (s *Shedder) grow(u graph.NodeID) {
	for int(u) >= len(s.origDeg) {
		s.origDeg = append(s.origDeg, 0)
		s.keptDeg = append(s.keptDeg, 0)
	}
}

// dis returns the current degree discrepancy of node u.
func (s *Shedder) dis(u graph.NodeID) float64 {
	return float64(s.keptDeg[u]) - s.p*float64(s.origDeg[u])
}

// addGain returns the Δ change of incrementing u's kept degree.
func (s *Shedder) addGain(u graph.NodeID) float64 {
	d := s.dis(u)
	return math.Abs(d+1) - math.Abs(d)
}

// dropGain returns the Δ change of decrementing u's kept degree.
func (s *Shedder) dropGain(u graph.NodeID) float64 {
	d := s.dis(u)
	return math.Abs(d-1) - math.Abs(d)
}

// target returns the current edge budget [p·m].
func (s *Shedder) target() int {
	return int(math.Round(s.p * float64(s.seen)))
}

// Insert processes one stream edge. Self-loops and duplicates of
// currently-kept edges are counted toward m but never stored twice; the
// shedder has no memory of shed edges, so a re-inserted shed edge is a new
// observation (consistent with multigraph-style streams).
func (s *Shedder) Insert(u, v graph.NodeID) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("stream: negative node id (%d, %d)", u, v)
	}
	if u == v {
		return fmt.Errorf("stream: self-loop at node %d", u)
	}
	s.grow(u)
	s.grow(v)
	e := graph.Edge{U: u, V: v}.Canonical()
	s.seen++
	s.origDeg[u]++
	s.origDeg[v]++
	s.insCtr.Add(1)
	_, alreadyKept := s.lookup(e)

	// Phase 1: grow toward the budget.
	if len(s.kept) < s.target() && !alreadyKept {
		s.keep(e)
	} else if !alreadyKept {
		// Phase 2: at budget — swap in the new edge if evicting the best of
		// a few random kept edges reduces Δ.
		s.maybeSwap(e)
	}
	// Shrinkage never happens (the target is non-decreasing in m), but the
	// budget can lag one edge behind after rounding; nothing to do.
	if s.qSwap != nil {
		s.epochIns++
		if s.epochIns == StreamEpoch {
			s.foldEpoch()
		}
	}
	return nil
}

// keep stores edge e. The novel-edge tally lives here — not in setPos, which
// evict also calls while repositioning — so each kept edge counts once.
func (s *Shedder) keep(e graph.Edge) {
	if s.novelCtr != nil && (s.base == nil || s.base.EdgeIDOf(e.U, e.V) < 0) {
		s.novelCtr.Add(1)
	}
	s.setPos(e, int32(len(s.kept)))
	s.kept = append(s.kept, e)
	s.keptDeg[e.U]++
	s.keptDeg[e.V]++
}

// evict removes the kept edge at position i by swap-remove.
func (s *Shedder) evict(i int32) {
	e := s.kept[i]
	last := int32(len(s.kept) - 1)
	if i != last {
		s.kept[i] = s.kept[last]
		s.setPos(s.kept[i], i)
	}
	s.kept = s.kept[:last]
	s.delPos(e)
	s.keptDeg[e.U]--
	s.keptDeg[e.V]--
}

// maybeSwap evaluates swapping the incoming edge against sampled kept edges.
func (s *Shedder) maybeSwap(e graph.Edge) {
	if len(s.kept) == 0 {
		return
	}
	addD := s.addGain(e.U) + s.addGain(e.V)
	bestIdx := int32(-1)
	bestD := 0.0
	for c := 0; c < s.candidates; c++ {
		i := int32(s.rng.Intn(len(s.kept)))
		old := s.kept[i]
		// Exact combined change, handling shared endpoints: drop old, add e.
		d := s.swapDelta(old, e, addD)
		if d < bestD {
			bestD = d
			bestIdx = i
		}
	}
	if bestIdx >= 0 {
		s.evict(bestIdx)
		s.keep(e)
		s.swapCtr.Add(1)
		if s.qSwap != nil {
			s.epochSwaps++
		}
	}
}

// swapDelta returns the Δ change of evicting old and keeping e. addD is the
// precomputed independent add gain, used when the edges share no endpoint.
func (s *Shedder) swapDelta(old, e graph.Edge, addD float64) float64 {
	if old.U != e.U && old.U != e.V && old.V != e.U && old.V != e.V {
		return addD + s.dropGain(old.U) + s.dropGain(old.V)
	}
	// Shared endpoint: evaluate the net ±1 shifts exactly.
	nodes := [4]graph.NodeID{old.U, old.V, e.U, e.V}
	deltas := [4]int{-1, -1, 1, 1}
	for i := 2; i < 4; i++ {
		for j := 0; j < i; j++ {
			if nodes[i] == nodes[j] && deltas[i] != 0 {
				deltas[j] += deltas[i]
				deltas[i] = 0
			}
		}
	}
	var d float64
	for i, u := range nodes {
		if deltas[i] == 0 {
			continue
		}
		du := s.dis(u)
		d += math.Abs(du+float64(deltas[i])) - math.Abs(du)
	}
	return d
}

// Delete processes one stream edge deletion (a turnstile stream). The
// caller is responsible for only deleting edges previously inserted: the
// shedder has no memory of shed edges, so it can verify existence only for
// currently-kept edges. If the deleted edge is kept it is evicted; if the
// shrunken budget now exceeds the kept count nothing can be done (shed
// edges are gone — the price of bounded memory), so the kept set is allowed
// to run below target until the stream grows again.
func (s *Shedder) Delete(u, v graph.NodeID) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("stream: negative node id (%d, %d)", u, v)
	}
	if u == v {
		return fmt.Errorf("stream: self-loop at node %d", u)
	}
	if int(u) >= len(s.origDeg) || int(v) >= len(s.origDeg) ||
		s.origDeg[u] == 0 || s.origDeg[v] == 0 || s.seen == 0 {
		return fmt.Errorf("stream: deleting edge (%d,%d) never observed", u, v)
	}
	e := graph.Edge{U: u, V: v}.Canonical()
	s.seen--
	s.origDeg[u]--
	s.origDeg[v]--
	s.delCtr.Add(1)
	if i, ok := s.lookup(e); ok {
		s.evict(i)
	}
	// Over-budget after shrink: drop the eviction that most improves Δ
	// among sampled candidates (exact when the overshoot is small).
	for len(s.kept) > s.target() {
		bestIdx := int32(0)
		bestD := math.Inf(1)
		for c := 0; c < s.candidates && c < len(s.kept); c++ {
			i := int32(s.rng.Intn(len(s.kept)))
			old := s.kept[i]
			if d := s.dropGain(old.U) + s.dropGain(old.V); d < bestD {
				bestD = d
				bestIdx = i
			}
		}
		s.evict(bestIdx)
	}
	return nil
}

// Seen returns the number of stream edges observed.
func (s *Shedder) Seen() int64 { return s.seen }

// Kept returns the current reduced edge count.
func (s *Shedder) Kept() int { return len(s.kept) }

// Delta returns the current total degree discrepancy Σ_u |dis(u)|.
func (s *Shedder) Delta() float64 {
	var sum float64
	for u := range s.origDeg {
		if s.origDeg[u] > 0 || s.keptDeg[u] > 0 {
			sum += math.Abs(s.dis(graph.NodeID(u)))
		}
	}
	return sum
}

// Snapshot materializes the current reduced graph. Duplicate stream
// insertions of a kept edge are stored once, so the snapshot is always a
// simple graph.
func (s *Shedder) Snapshot() *graph.Graph {
	b := graph.NewBuilder(len(s.origDeg))
	for _, e := range s.kept {
		b.TryAddEdge(e.U, e.V)
	}
	return b.Graph()
}

// Edges returns a copy of the kept edge set.
func (s *Shedder) Edges() []graph.Edge {
	return append([]graph.Edge(nil), s.kept...)
}
