package stream

import (
	"fmt"
	"testing"

	"edgeshed/internal/graph/gen"
)

// benchShedderInsert replays a stored graph as an insert stream; withBase
// selects the base-graph (flat edge-id) bookkeeping over the map.
func benchShedderInsert(b *testing.B, withBase bool) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	opts := Options{P: 0.5, Seed: 1, Nodes: g.NumNodes()}
	if withBase {
		opts.Base = g
		g.CSR() // build the shared view outside the timed loop
	}
	edges := g.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewShedder(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range edges {
			if err := s.Insert(e.U, e.V); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(edges)), "edges/op")
}

func BenchmarkShedderInsertMapIndexed(b *testing.B) {
	benchShedderInsert(b, false)
}

func BenchmarkShedderInsertCSRIndexed(b *testing.B) {
	benchShedderInsert(b, true)
}

func BenchmarkShedderCandidates(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 4, 1)
	edges := g.Edges()
	for _, cand := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("candidates=%d", cand), func(b *testing.B) {
			var delta float64
			for i := 0; i < b.N; i++ {
				s, err := NewShedder(Options{P: 0.5, Seed: 1, Candidates: cand, Nodes: g.NumNodes()})
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range edges {
					if err := s.Insert(e.U, e.V); err != nil {
						b.Fatal(err)
					}
				}
				delta = s.Delta()
			}
			b.ReportMetric(delta, "delta")
		})
	}
}

func candName(c int) string {
	switch c {
	case 2:
		return "candidates=2"
	case 8:
		return "candidates=8"
	default:
		return "candidates=32"
	}
}
