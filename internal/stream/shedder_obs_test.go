package stream

import (
	"math"
	"testing"

	"edgeshed/internal/graph/gen"
	"edgeshed/internal/obs"
)

// drive streams a generated graph's edges (in input order) into a fresh
// shedder with the given observability span, returning the shedder. The
// graph is sized by the caller to cross epoch boundaries when needed.
func drive(t *testing.T, n, m int, p float64, sp *obs.Span) *Shedder {
	t.Helper()
	g := gen.BarabasiAlbert(n, m, 11)
	s, err := NewShedder(Options{P: p, Seed: 5, Nodes: g.NumNodes(), Obs: sp})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if err := s.Insert(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestShedderBitIdenticalWithObs pins the instrumentation non-perturbation
// guarantee for the stream shedder: attaching a live recorder — counters
// plus the per-epoch quality folds — must not change a single kept edge.
// The stream is sized past 2·StreamEpoch insertions so the epoch fold path
// genuinely runs mid-stream, not just the final state.
func TestShedderBitIdenticalWithObs(t *testing.T) {
	const n, m = 12_000, 3 // ~36k edges > 2*StreamEpoch
	want := drive(t, n, m, 0.5, nil)
	if want.Seen() < 2*StreamEpoch {
		t.Fatalf("stream too short to cross two epochs: %d inserts", want.Seen())
	}

	rec := obs.New("test")
	got := drive(t, n, m, 0.5, rec.Root())
	rec.Root().End()

	we, ge := want.Edges(), got.Edges()
	if len(we) != len(ge) {
		t.Fatalf("%d kept edges with obs, %d without", len(ge), len(we))
	}
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("kept edge %d differs: %v with obs, %v without", i, ge[i], we[i])
		}
	}

	// The recorder must actually have observed the stream: insert/swap
	// counters and at least two epochs' worth of quality points per probe.
	vals := rec.CounterValues()
	if vals["stream.inserts"] != want.Seen() {
		t.Errorf("stream.inserts = %d, want %d", vals["stream.inserts"], want.Seen())
	}
	epochs := map[string]int{}
	for _, q := range rec.QualityPoints() {
		epochs[q.Metric]++
		if q.Ratio != 0.5 {
			t.Errorf("%s recorded at ratio %v, want 0.5", q.Metric, q.Ratio)
		}
	}
	for _, metric := range []string{"stream.epoch.swap_rate", "stream.epoch.delta", "stream.epoch.kept_fraction"} {
		if epochs[metric] < 2 {
			t.Errorf("%s folded %d times, want >= 2 (stream crossed 2 epochs)", metric, epochs[metric])
		}
	}
}

// TestShedderEpochStats pins the recorded values' semantics: swap rates and
// kept fractions are proper fractions, and the epoch Δ matches the exact
// Delta() recomputed from the final state at the last fold.
func TestShedderEpochStats(t *testing.T) {
	rec := obs.New("test")
	s := drive(t, 12_000, 3, 0.4, rec.Root())
	rec.Root().End()

	var lastDelta float64
	folds := 0
	for _, q := range rec.QualityPoints() {
		switch q.Metric {
		case "stream.epoch.swap_rate", "stream.epoch.kept_fraction":
			if q.Value < 0 || q.Value > 1 {
				t.Errorf("%s = %v outside [0, 1]", q.Metric, q.Value)
			}
		case "stream.epoch.delta":
			if q.Value < 0 || math.IsNaN(q.Value) {
				t.Errorf("stream.epoch.delta = %v", q.Value)
			}
			lastDelta = q.Value
			folds++
		}
	}
	if folds < 2 {
		t.Fatalf("%d delta folds, want >= 2", folds)
	}
	// No inserts happened after the last fold iff epochIns reset to below an
	// epoch; the recorded Δ was exact at fold time, so replaying the stream
	// to that point would reproduce it. Cheaper equivalent check: the final
	// exact Δ differs from the last fold only by the post-fold tail, and a
	// full-stream Δ is always reachable from it — sanity-bound both.
	if got := s.Delta(); math.Abs(got-lastDelta) > float64(2*StreamEpoch) {
		t.Errorf("final Δ %v implausibly far from last epoch fold %v", got, lastDelta)
	}
	// The live gauge view carries the same latest values.
	qv := rec.QualityValues()
	if _, ok := qv["stream.epoch.delta"]; !ok {
		t.Errorf("stream.epoch.delta missing from QualityValues: %v", qv)
	}
}
