package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func TestNewShedderValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.3, 1.7, math.NaN()} {
		if _, err := NewShedder(Options{P: p}); err == nil {
			t.Errorf("p = %v accepted", p)
		}
	}
	if _, err := NewShedder(Options{P: 0.5}); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	s, _ := NewShedder(Options{P: 0.5})
	if err := s.Insert(3, 3); err == nil {
		t.Error("self-loop accepted")
	}
	if err := s.Insert(-1, 2); err == nil {
		t.Error("negative id accepted")
	}
	if err := s.Insert(0, 1); err != nil {
		t.Errorf("valid insert rejected: %v", err)
	}
}

// feed streams all edges of g into a fresh shedder in random order.
func feed(t *testing.T, g *graph.Graph, p float64, seed int64) *Shedder {
	t.Helper()
	s, err := NewShedder(Options{P: p, Seed: seed, Nodes: g.NumNodes()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	edges := append([]graph.Edge(nil), g.Edges()...)
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		if err := s.Insert(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestBudgetTracking(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 3)
	for _, p := range []float64{0.2, 0.5, 0.8} {
		s := feed(t, g, p, 7)
		want := int(math.Round(p * float64(g.NumEdges())))
		// The kept count can lag the budget by the few edges that arrived
		// while the budget rounded down, but never exceeds it.
		if s.Kept() > want {
			t.Errorf("p=%v: kept %d > budget %d", p, s.Kept(), want)
		}
		if s.Kept() < want-1 {
			t.Errorf("p=%v: kept %d, want within 1 of %d", p, s.Kept(), want)
		}
		if s.Seen() != int64(g.NumEdges()) {
			t.Errorf("seen = %d, want %d", s.Seen(), g.NumEdges())
		}
	}
}

func TestSnapshotValidSubgraph(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 5)
	s := feed(t, g, 0.4, 9)
	snap := s.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	for _, e := range snap.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("snapshot edge %v not in stream", e)
		}
	}
}

func TestStreamBeatsReservoirOnDelta(t *testing.T) {
	// The degree-aware policy must beat plain reservoir sampling (the
	// memory-equivalent baseline) on Δ for heavy-tailed streams.
	g := gen.ConfigurationModel(gen.PowerLawDegrees(500, 2.1, 1, 60, 21), 22)
	p := 0.5
	s := feed(t, g, p, 11)

	// Reservoir baseline: uniform sample of the same size over the same
	// stream order.
	rng := rand.New(rand.NewSource(12))
	edges := append([]graph.Edge(nil), g.Edges()...)
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	k := s.Kept()
	reservoir := append([]graph.Edge(nil), edges[:k]...)
	for i := k; i < len(edges); i++ {
		if j := rng.Intn(i + 1); j < k {
			reservoir[j] = edges[i]
		}
	}
	resDelta := deltaOf(g, reservoir, p)
	if s.Delta() >= resDelta {
		t.Errorf("stream shedder Δ = %v not better than reservoir Δ = %v", s.Delta(), resDelta)
	}
}

func deltaOf(g *graph.Graph, edges []graph.Edge, p float64) float64 {
	deg := make([]int, g.NumNodes())
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	var sum float64
	for u := 0; u < g.NumNodes(); u++ {
		sum += math.Abs(float64(deg[u]) - p*float64(g.Degree(graph.NodeID(u))))
	}
	return sum
}

func TestDeltaMatchesSnapshot(t *testing.T) {
	// The incrementally tracked Δ must equal a from-scratch recomputation.
	g := gen.BarabasiAlbert(120, 3, 6)
	p := 0.4
	s := feed(t, g, p, 13)
	if got, want := s.Delta(), deltaOf(g, s.Edges(), p); math.Abs(got-want) > 1e-9 {
		t.Errorf("tracked Δ = %v, recomputed = %v", got, want)
	}
}

func TestGrowOnDemand(t *testing.T) {
	s, _ := NewShedder(Options{P: 0.5}) // zero pre-sizing
	if err := s.Insert(1000, 2000); err != nil {
		t.Fatalf("insert beyond pre-size: %v", err)
	}
	if s.Snapshot().NumNodes() != 2001 {
		t.Errorf("snapshot |V| = %d, want 2001", s.Snapshot().NumNodes())
	}
}

func TestDuplicateStreamEdges(t *testing.T) {
	// Re-inserting a kept edge counts as an observation but is stored once.
	s, _ := NewShedder(Options{P: 0.9, Nodes: 4})
	for i := 0; i < 5; i++ {
		if err := s.Insert(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if s.Seen() != 5 {
		t.Errorf("seen = %d, want 5", s.Seen())
	}
	if s.Kept() > 1 {
		t.Errorf("kept = %d, want <= 1 (simple graph)", s.Kept())
	}
	if err := s.Snapshot().Validate(); err != nil {
		t.Errorf("snapshot invalid: %v", err)
	}
}

func TestStreamDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(80, 200, 8)
	a := feed(t, g, 0.5, 42)
	b := feed(t, g, 0.5, 42)
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatal("kept sizes differ")
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("kept edges differ across identical runs")
		}
	}
}

func TestDeleteValidation(t *testing.T) {
	s, _ := NewShedder(Options{P: 0.5, Nodes: 4})
	if err := s.Delete(0, 1); err == nil {
		t.Error("deleting never-seen edge accepted")
	}
	if err := s.Delete(2, 2); err == nil {
		t.Error("self-loop delete accepted")
	}
	if err := s.Delete(-1, 0); err == nil {
		t.Error("negative id delete accepted")
	}
	s.Insert(0, 1)
	if err := s.Delete(0, 1); err != nil {
		t.Errorf("valid delete rejected: %v", err)
	}
	if s.Seen() != 0 || s.Kept() != 0 {
		t.Errorf("after insert+delete: seen=%d kept=%d, want 0, 0", s.Seen(), s.Kept())
	}
}

func TestDeleteKeptEdgeEvicts(t *testing.T) {
	s, _ := NewShedder(Options{P: 0.9, Nodes: 10})
	for i := 0; i < 9; i++ {
		s.Insert(graph.NodeID(i), graph.NodeID(i+1))
	}
	kept := s.Kept()
	target := s.Edges()[0]
	if err := s.Delete(target.U, target.V); err != nil {
		t.Fatal(err)
	}
	if s.Kept() >= kept {
		t.Errorf("kept %d did not shrink from %d", s.Kept(), kept)
	}
	for _, e := range s.Edges() {
		if e == target {
			t.Error("deleted edge still kept")
		}
	}
}

func TestDeleteMaintainsBudget(t *testing.T) {
	// Insert a graph, then delete a random half of its edges; the kept set
	// must track the shrinking budget and Δ must stay consistent.
	g := gen.ErdosRenyi(60, 200, 17)
	p := 0.5
	s, _ := NewShedder(Options{P: p, Seed: 18, Nodes: 60})
	for _, e := range g.Edges() {
		if err := s.Insert(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range g.Edges()[:100] {
		if err := s.Delete(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if s.Seen() != 100 {
		t.Fatalf("seen = %d, want 100", s.Seen())
	}
	budget := int(math.Round(p * 100))
	if s.Kept() > budget {
		t.Errorf("kept %d exceeds budget %d after deletions", s.Kept(), budget)
	}
	// Δ consistency against the remaining stream: the remaining original
	// degrees are those of the last 100 edges.
	remaining, err := graph.NewFromEdges(60, g.Edges()[100:])
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Delta(), deltaOf(remaining, s.Edges(), p); math.Abs(got-want) > 1e-9 {
		t.Errorf("tracked Δ = %v, recomputed = %v", got, want)
	}
	if err := s.Snapshot().Validate(); err != nil {
		t.Errorf("snapshot invalid after deletions: %v", err)
	}
}

// TestBaseIndexMatchesMap pins the Options.Base contract: declaring a base
// graph switches the kept-position bookkeeping from the map to the flat
// edge-id array, and must not change a single output — across inserts,
// duplicate inserts, deletions, and novel edges (including node ids beyond
// the base graph) that exercise the map fallback.
func TestBaseIndexMatchesMap(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 19)
	plain, err := NewShedder(Options{P: 0.5, Seed: 4, Nodes: g.NumNodes()})
	if err != nil {
		t.Fatal(err)
	}
	based, err := NewShedder(Options{P: 0.5, Seed: 4, Base: g})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20))
	edges := append([]graph.Edge(nil), g.Edges()...)
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	step := func(op func(s *Shedder) error) {
		if err := op(plain); err != nil {
			t.Fatal(err)
		}
		if err := op(based); err != nil {
			t.Fatal(err)
		}
	}
	for i, e := range edges {
		step(func(s *Shedder) error { return s.Insert(e.U, e.V) })
		switch {
		case i%17 == 3:
			// Novel edge the base graph has never seen (fresh node id).
			u := graph.NodeID(g.NumNodes() + i)
			step(func(s *Shedder) error { return s.Insert(e.U, u) })
		case i%13 == 5:
			// Duplicate observation of a base edge.
			step(func(s *Shedder) error { return s.Insert(e.U, e.V) })
		case i%11 == 7:
			step(func(s *Shedder) error { return s.Delete(e.U, e.V) })
		}
	}
	if plain.Seen() != based.Seen() || plain.Kept() != based.Kept() {
		t.Fatalf("seen/kept diverge: (%d,%d) vs (%d,%d)",
			plain.Seen(), plain.Kept(), based.Seen(), based.Kept())
	}
	pe, be := plain.Edges(), based.Edges()
	for i := range pe {
		if pe[i] != be[i] {
			t.Fatalf("kept edge %d diverges: %v vs %v", i, pe[i], be[i])
		}
	}
	if plain.Delta() != based.Delta() {
		t.Fatalf("Δ diverges: %v vs %v", plain.Delta(), based.Delta())
	}
}

// TestStreamInvariants property-checks budget and Δ consistency across
// random streams and parameters.
func TestStreamInvariants(t *testing.T) {
	f := func(seed int64, pRaw uint8, candRaw uint8) bool {
		p := 0.1 + 0.8*float64(pRaw)/255
		g := gen.ErdosRenyi(50, 120, seed)
		s, err := NewShedder(Options{P: p, Seed: seed, Candidates: int(candRaw)%16 + 1, Nodes: 50})
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if err := s.Insert(e.U, e.V); err != nil {
				return false
			}
		}
		budget := int(math.Round(p * float64(g.NumEdges())))
		if s.Kept() > budget || s.Kept() < budget-1 {
			return false
		}
		return math.Abs(s.Delta()-deltaOf(g, s.Edges(), p)) < 1e-9 &&
			s.Snapshot().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
